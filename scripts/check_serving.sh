#!/usr/bin/env bash
# Serving-simulator gate (bench_serving + src/serve). Four checks:
#   1. determinism     — the same seed emits byte-identical record
#      arrays across repeated runs AND across thread counts (the
#      event loop is serial in simulated time; worker count must be
#      invisible);
#   2. report validity — BENCH_serving.json passes the same schema
#      validation as every other RunRecord document, and the serving
#      headlines hold: dynamic batching beats batch=1 goodput at the
#      fixed SLO, the 4-chip board clears 2.5x single-chip
#      throughput, and overload shedding stays a bounded fraction
#      while goodput beats the open door;
#   3. chaos-under-load — a serve.chip_down spec completes the run
#      (outages delay, never drop), stamps the v5 resilience block
#      (serving breakers/degradation live in the nested serving
#      object), and is itself deterministic per fault seed;
#   4. workload knobs  — seed= and stream= select different traffic,
#      and malformed values exit 2 naming the offender.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi
BENCH="$BUILD_DIR/bench/bench_serving"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# The document-level metrics object holds wall-clock histograms, so
# whole documents differ between runs; the records array (everything
# from `"records": [` to EOF) is the deterministic payload.
records_of() {
    awk '/"records": \[/,0' "$1" > "$2"
}

echo "==== check_serving: determinism across runs and threads ===="
"$BENCH" "json=$workdir/a.json" >/dev/null
"$BENCH" "json=$workdir/b.json" >/dev/null
"$BENCH" "json=$workdir/t4.json" threads=4 >/dev/null
records_of "$workdir/a.json" "$workdir/a.records"
records_of "$workdir/b.json" "$workdir/b.records"
records_of "$workdir/t4.json" "$workdir/t4.records"
cmp -s "$workdir/a.records" "$workdir/b.records" || {
    echo "repeated serving runs emitted different records" >&2
    exit 1
}
cmp -s "$workdir/a.records" "$workdir/t4.records" || {
    echo "thread count changed the serving records" >&2
    exit 1
}
echo "serving records identical across runs and thread counts"

echo "==== check_serving: report validity + serving headlines ===="
if command -v python3 >/dev/null 2>&1; then
    python3 - "$workdir/a.json" <<'EOF'
import json
import math
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "cfconv.run_record", "bad schema id"
assert doc.get("version") == 2, "fault-free serving doc must be v2"
records = {r["model"]: r for r in doc["records"]}
assert len(records) == 19, f"want 19 scenarios, got {len(records)}"
for name, r in records.items():
    assert r["layers"], f"{name}: no layers"
    assert math.isfinite(r["tflops"]) and r["tflops"] > 0, (
        f"{name}: tflops = {r['tflops']}")
    assert "resilience" not in r, f"{name}: unexpected resilience"

def goodput(r):
    return sum(l["extras"].get("goodputRps", 0.0) for l in r["layers"])

def served(r):
    return sum(l["count"] for l in r["layers"])

# Dynamic batching must beat batch=1 goodput at the fixed SLO.
b1 = goodput(records["pareto_b1"])
best = max(goodput(records[f"pareto_b{b}"]) for b in (4, 8, 16, 32, 64))
assert best > b1, f"batching goodput {best:.0f} <= batch-1 {b1:.0f}"

# 4-chip board must clear 2.5x single-chip throughput (both records
# run the same saturating arrival list, so served counts match and
# throughput ratio = inverse makespan ratio).
t1 = served(records["scale_n1"]) / records["scale_n1"]["seconds"]
t4 = served(records["scale_n4"]) / records["scale_n4"]["seconds"]
assert t4 > 2.5 * t1, f"4-chip scaling {t4 / t1:.2f}x < 2.5x"

# Overload shedding: a bounded shed fraction, and better goodput than
# the open door.
shed_r = records["overload_shed"]
shed = sum(l["extras"]["shed"] for l in shed_r["layers"])
offered = sum(l["extras"]["offered"] for l in shed_r["layers"])
assert 0 < shed < offered, f"shed {shed} not in (0, {offered})"
assert shed / offered < 0.5, f"shed fraction {shed / offered:.2f} >= 0.5"
assert goodput(shed_r) > goodput(records["overload_open"]), (
    "shedding did not improve overload goodput")

print(f"serving report OK: batching {best / b1:.2f}x, "
      f"scaling {t4 / t1:.2f}x, shed {shed / offered:.2f}")
EOF
else
    grep -q '"schema": "cfconv.run_record"' "$workdir/a.json"
    grep -q '"model": "pareto_b1"' "$workdir/a.json"
    grep -q '"model": "overload_shed"' "$workdir/a.json"
    echo "serving report OK (grep fallback)"
fi

echo "==== check_serving: chaos-under-load (serve.chip_down) ===="
CHAOS_SPEC='seed=11; serve.chip_down=0.1'
"$BENCH" "json=$workdir/chaos_a.json" "faults=$CHAOS_SPEC" >/dev/null
"$BENCH" "json=$workdir/chaos_b.json" "faults=$CHAOS_SPEC" >/dev/null
records_of "$workdir/chaos_a.json" "$workdir/chaos_a.records"
records_of "$workdir/chaos_b.json" "$workdir/chaos_b.records"
cmp -s "$workdir/chaos_a.records" "$workdir/chaos_b.records" || {
    echo "seeded chaos serving runs emitted different records" >&2
    exit 1
}
grep -q '"version": 5' "$workdir/chaos_a.json" || {
    echo "chaos serving document is not schema v5" >&2
    exit 1
}
grep -q '"resilience"' "$workdir/chaos_a.json" || {
    echo "chaos serving document has no resilience block" >&2
    exit 1
}
# Chip outages delay batches but never drop them: every scenario must
# still conserve offered = completed + shed, which the validator
# asserts implicitly via the Pareto rows (shed = 0 there even under
# chaos because admission stays unbounded).
grep -q '"model": "pareto_b64"' "$workdir/chaos_a.json" || {
    echo "chaos run did not complete every scenario" >&2
    exit 1
}
echo "chaos-under-load deterministic, v5 resilience block present"

echo "==== check_serving: workload knobs (seed=, stream=) ===="
"$BENCH" "json=$workdir/s7.json" seed=7 stream=bursty >/dev/null
records_of "$workdir/s7.json" "$workdir/s7.records"
cmp -s "$workdir/a.records" "$workdir/s7.records" && {
    echo "seed=7 stream=bursty emitted the default records" >&2
    exit 1
}
set +e
"$BENCH" seed=0 >/dev/null 2>"$workdir/seed.err"
seed_rc=$?
"$BENCH" stream=weekly >/dev/null 2>"$workdir/stream.err"
stream_rc=$?
set -e
if [ "$seed_rc" -ne 2 ] || ! grep -q 'seed' "$workdir/seed.err"; then
    echo "seed=0 exited $seed_rc without naming seed (want exit 2)" >&2
    exit 1
fi
if [ "$stream_rc" -ne 2 ] || ! grep -q 'weekly' "$workdir/stream.err"
then
    echo "stream=weekly exited $stream_rc without naming it" >&2
    exit 1
fi
echo "workload knobs honored; malformed values exit 2"

echo "SERVING OK"
