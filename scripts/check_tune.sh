#!/usr/bin/env bash
# Autotuner gate: the tuned-config database must make repeat runs pure
# lookups, and the loader must reject stale entries instead of
# trusting them.
#
#   1. Fresh run: searches happen (evaluations > 0), the tuned records
#      beat the stock baselines (speedup > 1) on both backend
#      families, and the database is written.
#   2. Repeat run with the same database: ZERO search evaluations and
#      a byte-identical report + database.
#   3. Staleness: rename a variant inside the database; the loader
#      must reject that entry (rejected > 0) and the run must still
#      succeed by re-searching.
#   4. Algorithm staleness: an entry naming an algorithm the live
#      conv::Algorithm registry does not know must likewise be
#      rejected and re-searched.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH="$BUILD_DIR/bench/bench_autotune"
if [ ! -x "$BENCH" ]; then
    echo "check_tune: $BENCH not built; run cmake first" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
db="$workdir/tuned.json"
json1="$workdir/report1.json"
json2="$workdir/report2.json"

# tune_line <family> <output-file>: the TUNE summary for one family.
tune_line() {
    grep "^TUNE family=$1 " "$2"
}
# field <line> <key>: value of key=value in a TUNE line.
field() {
    printf '%s\n' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"
}

echo "==== check_tune: fresh search ===="
"$BENCH" "db=$db" "json=$json1" > "$workdir/run1.out"
for family in tpu gpu; do
    line="$(tune_line "$family" "$workdir/run1.out")"
    evals="$(field "$line" evaluations)"
    speedup="$(field "$line" speedup)"
    if [ "$evals" -le 0 ]; then
        echo "check_tune: fresh $family run did no search" >&2
        exit 1
    fi
    if ! awk -v s="$speedup" 'BEGIN { exit !(s > 1.0) }'; then
        echo "check_tune: $family tuned speedup $speedup <= 1.0" >&2
        exit 1
    fi
    echo "  $family: evaluations=$evals speedup=$speedup"
done
[ -s "$db" ] || { echo "check_tune: no database written" >&2; exit 1; }

echo "==== check_tune: repeat run answers from the database ===="
cp "$db" "$workdir/db_after_run1.json"
"$BENCH" "db=$db" "json=$json2" > "$workdir/run2.out"
for family in tpu gpu; do
    line="$(tune_line "$family" "$workdir/run2.out")"
    evals="$(field "$line" evaluations)"
    if [ "$evals" -ne 0 ]; then
        echo "check_tune: repeat $family run searched again" \
            "(evaluations=$evals)" >&2
        exit 1
    fi
done
cmp "$json1" "$json2" \
    || { echo "check_tune: repeat report differs" >&2; exit 1; }
cmp "$db" "$workdir/db_after_run1.json" \
    || { echo "check_tune: repeat run rewrote the database" >&2; exit 1; }
echo "  zero evaluations, byte-identical report and database"

echo "==== check_tune: stale entries are rejected ===="
# Pick whatever variant the first TPU-family entry actually chose — the
# winner set (and the entry order) shifts as the zoo grows, so the
# victim is found, not hardcoded; it must be a tpu entry because the
# re-search assertion below watches the tpu TUNE line.
victim="$(awk '/"family": "tpu"/ { intpu = 1 }
    intpu && /"variant": / {
        gsub(/.*"variant": "|".*/, ""); print; exit
    }' "$db")"
[ -n "$victim" ] || { echo "check_tune: no variant in db" >&2; exit 1; }
# Hand-edited databases lose their checksum trailer (a tampered trailer
# would — correctly — be treated as a torn file and rebuilt from
# scratch); trailer-less files still load per-entry as legacy content.
sed -e "s/\"variant\": \"$victim\"/\"variant\": \"tpu-v9-retired\"/" \
    -e '/^#cfconv-sum:/d' "$db" > "$workdir/stale.json"
"$BENCH" "db=$workdir/stale.json" "json=$workdir/report3.json" \
    > "$workdir/run3.out" 2> "$workdir/run3.err"
rejected="$(sed -n 's/.*rejected=\([0-9]*\).*/\1/p' \
    "$workdir/run3.out" | head -n 1)"
if [ -z "$rejected" ] || [ "$rejected" -le 0 ]; then
    echo "check_tune: stale entries were not rejected" >&2
    exit 1
fi
line="$(tune_line tpu "$workdir/run3.out")"
evals="$(field "$line" evaluations)"
if [ "$evals" -le 0 ]; then
    echo "check_tune: rejected entries were not re-searched" >&2
    exit 1
fi
cmp "$workdir/report3.json" "$json1" \
    || { echo "check_tune: re-searched report differs" >&2; exit 1; }
echo "  rejected=$rejected stale entries, re-search reproduced the report"

echo "==== check_tune: unknown-algorithm entries are rejected ===="
sed -e 's/"algorithm": "channel-first"/"algorithm": "winograd"/' \
    -e '/^#cfconv-sum:/d' "$db" > "$workdir/stale_algo.json"
"$BENCH" "db=$workdir/stale_algo.json" "json=$workdir/report4.json" \
    > "$workdir/run4.out" 2> "$workdir/run4.err"
rejected="$(sed -n 's/.*rejected=\([0-9]*\).*/\1/p' \
    "$workdir/run4.out" | head -n 1)"
if [ -z "$rejected" ] || [ "$rejected" -le 0 ]; then
    echo "check_tune: unknown-algorithm entries were not rejected" >&2
    exit 1
fi
cmp "$workdir/report4.json" "$json1" \
    || { echo "check_tune: algo re-search report differs" >&2; exit 1; }
echo "  rejected=$rejected unknown-algorithm entries, report reproduced"

echo "TUNE OK"
