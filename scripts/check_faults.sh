#!/usr/bin/env bash
# Chaos gate for the fault-injection harness and the resilient
# ModelRunner. Five checks:
#   1. fault-free parity  — with CFCONV_FAULTS unset, two bench runs
#      emit byte-identical record arrays at schema v2 with no
#      resilience block (chaos plumbing is invisible when disarmed);
#   2. chaos determinism  — two runs with the same seeded fault spec
#      emit byte-identical record arrays (the schedule is a pure
#      function of seed/site/key, never of thread timing);
#   3. failover visibility — a forced tpu-v2 step-timeout completes
#      via the gpu-v100 failover chain and shows up in the v3
#      resilience block and the exported metrics counters;
#   4. self-healing parity — cache corruption and worker stalls
#      change no simulated numbers (records match fault-free byte for
#      byte after the resilience block is stripped);
#   5. spec hygiene       — a malformed CFCONV_FAULTS aborts with exit
#      code 2 before any simulation runs, and the sram.bank_read site
#      is exercised through its deterministic unit test.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

BENCH="$BUILD_DIR/bench/bench_models_report"
CHAOS_SPEC='seed=5; accel.step_timeout@tpu-v2=0.5'
CHAOS_SPEC+='; max_attempts=2; failover=gpu-v100'

# The document-level metrics object holds wall-clock histograms, so
# whole documents differ between runs; the records array (everything
# from `"records": [` to EOF) is the deterministic payload.
records_of() {
    awk '/"records": \[/,0' "$1" > "$2"
}

# Same, minus the per-record resilience block — used to compare a
# chaos run's simulated numbers against a fault-free baseline.
records_sans_resilience() {
    awk '/"records": \[/,0' "$1" | sed '/"resilience": {/,/}/d' > "$2"
}

echo "==== check_faults: fault-free parity ===="
"$BENCH" "json=$workdir/clean_a.json" >/dev/null
"$BENCH" "json=$workdir/clean_b.json" >/dev/null
records_of "$workdir/clean_a.json" "$workdir/clean_a.records"
records_of "$workdir/clean_b.json" "$workdir/clean_b.records"
cmp -s "$workdir/clean_a.records" "$workdir/clean_b.records" || {
    echo "fault-free runs emitted different records" >&2
    exit 1
}
grep -q '"version": 2' "$workdir/clean_a.json" || {
    echo "fault-free document is not schema v2" >&2
    exit 1
}
if grep -q '"resilience"' "$workdir/clean_a.json"; then
    echo "fault-free document carries a resilience block" >&2
    exit 1
fi
echo "fault-free records identical, schema v2, no resilience block"

echo "==== check_faults: chaos determinism ===="
"$BENCH" "json=$workdir/chaos_a.json" "faults=$CHAOS_SPEC" >/dev/null
"$BENCH" "json=$workdir/chaos_b.json" "faults=$CHAOS_SPEC" >/dev/null
records_of "$workdir/chaos_a.json" "$workdir/chaos_a.records"
records_of "$workdir/chaos_b.json" "$workdir/chaos_b.records"
cmp -s "$workdir/chaos_a.records" "$workdir/chaos_b.records" || {
    echo "seeded chaos runs emitted different records" >&2
    exit 1
}
echo "seeded chaos records identical across runs"

echo "==== check_faults: retry/failover visibility ===="
grep -q '"version": 3' "$workdir/chaos_a.json" || {
    echo "chaos document is not schema v3" >&2
    exit 1
}
grep -q '"resilience"' "$workdir/chaos_a.json" || {
    echo "chaos document has no resilience block" >&2
    exit 1
}
grep -q '"final_backend": "gpu-v100"' "$workdir/chaos_a.json" || {
    echo "forced tpu-v2 timeout did not fail over to gpu-v100" >&2
    exit 1
}
grep -q '"resilience.failovers"' "$workdir/chaos_a.json" || {
    echo "metrics counters missing resilience.failovers" >&2
    exit 1
}
echo "failover visible in resilience block and metrics"

echo "==== check_faults: self-healing / latency-only parity ===="
"$BENCH" "json=$workdir/corrupt.json" \
    "faults=seed=1; cache.corrupt=1; pool.worker_stall=0.25" >/dev/null
records_sans_resilience "$workdir/clean_a.json" "$workdir/clean_a.sans"
records_sans_resilience "$workdir/corrupt.json" "$workdir/corrupt.sans"
cmp -s "$workdir/clean_a.sans" "$workdir/corrupt.sans" || {
    echo "cache corruption / worker stalls changed simulated results" \
        >&2
    exit 1
}
echo "corruption self-heals, stalls stay latency-only"

echo "==== check_faults: spec hygiene ===="
set +e
CFCONV_FAULTS="seed=1; no.such_site=1" "$BENCH" \
    "json=$workdir/bad.json" >/dev/null 2>"$workdir/bad.err"
bad_rc=$?
set -e
if [ "$bad_rc" -ne 2 ]; then
    echo "malformed CFCONV_FAULTS exited $bad_rc, want 2" >&2
    exit 1
fi
grep -q 'no.such_site' "$workdir/bad.err" || {
    echo "malformed-spec error does not name the offending site" >&2
    exit 1
}
"$BUILD_DIR"/tests/cfconv_tests \
    --gtest_filter='ResilienceTest.SramBankReadErrors*' >/dev/null || {
    echo "sram.bank_read chaos test failed" >&2
    exit 1
}
echo "bad specs rejected with exit 2; sram.bank_read site exercised"

echo "FAULTS OK"
