#!/usr/bin/env bash
# Kernel-backend parity gate: run the full test suite once per GEMM
# micro-kernel backend (CFCONV_KERNEL=scalar|generic|avx2). Every
# backend must pass the identical suite — the golden-parity tests in
# tests/tensor/test_microkernel.cc compare each backend against the
# naive reference, and the rest of the suite exercises the conv /
# simulator stacks on top of whichever kernel is forced.
#
# The avx2 leg is skipped (with a notice) when the host CPU lacks
# avx2+fma or the build disabled CFCONV_ENABLE_AVX2; the dispatcher
# would otherwise warn and fall back, which is correct at runtime but
# would make this gate silently re-test the generic backend.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi

have_avx2() {
    grep -q 'avx2' /proc/cpuinfo 2>/dev/null &&
        grep -q 'fma' /proc/cpuinfo 2>/dev/null || return 1
    # The dispatcher logs the resolved backend once; confirm the forced
    # avx2 request actually sticks (it falls back if the TU was built
    # without CFCONV_ENABLE_AVX2). Capture first: grep -q on the pipe
    # would SIGPIPE the test binary under pipefail.
    local probe
    probe="$(CFCONV_KERNEL=avx2 "$BUILD_DIR"/tests/cfconv_tests \
        --gtest_filter='MicrokernelDispatch.NamesAndAvailability' 2>&1)"
    grep -q 'backend: avx2' <<<"$probe"
}

BACKENDS="scalar generic"
if have_avx2; then
    BACKENDS="$BACKENDS avx2"
else
    echo "==== avx2 unavailable on this host/build; skipping ===="
fi

for kernel in $BACKENDS; do
    echo "==== CFCONV_KERNEL=$kernel ===="
    CFCONV_KERNEL="$kernel" \
        ctest --test-dir "$BUILD_DIR" --output-on-failure || {
        echo "FAILED at CFCONV_KERNEL=$kernel" >&2
        exit 1
    }
done

echo "kernel parity green for: $BACKENDS"
