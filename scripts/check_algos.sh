#!/usr/bin/env bash
# Algorithm-zoo gate: the conv::Algorithm refactor must not move a
# single byte on the pre-zoo paths, and the zoo additions must be real.
#
#   1. Byte-identity (bench stdout): the Fig 4a/4b sections of
#      bench_fig4_stride — the paths that existed before the refactor —
#      must match scripts/algo_goldens/fig4_stride.stdout.golden
#      exactly (the golden was captured pre-refactor; the new Fig 4c
#      section appends strictly after it).
#   2. Byte-identity (RunRecords): the bench_models_report records
#      subtree must match scripts/algo_goldens/models_records.golden.json
#      exactly — same schema version, same numbers, no algorithm field
#      leaking into the stock lowering paths.
#   3. Functional parity: the AlgoParity gtest suite (every registered
#      algorithm vs tensor::conv_ref on awkward shapes, both backends,
#      thread-count invariance).
#   4. The algorithm matrix: bench_fig4_stride writes BENCH_algos.json
#      with a full matrix run, honest n/a holes (SMM-Conv on strided
#      combos), a v4 document, and an algo=NAME filter that narrows it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
GOLDEN_DIR="scripts/algo_goldens"
FIG4="$BUILD_DIR/bench/bench_fig4_stride"
MODELS="$BUILD_DIR/bench/bench_models_report"
TESTS="$BUILD_DIR/tests/cfconv_tests"
for binary in "$FIG4" "$MODELS" "$TESTS"; do
    if [ ! -x "$binary" ]; then
        echo "check_algos: $binary not built; run cmake first" >&2
        exit 1
    fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "==== check_algos: pre-refactor bench stdout is byte-identical ===="
golden="$GOLDEN_DIR/fig4_stride.stdout.golden"
golden_lines="$(wc -l < "$golden")"
"$FIG4" "json=$workdir/fig4_run1.json" > "$workdir/fig4.out"
head -n "$golden_lines" "$workdir/fig4.out" > "$workdir/fig4.prefix"
cmp "$workdir/fig4.prefix" "$golden" || {
    echo "check_algos: Fig 4a/4b stdout drifted from the golden" >&2
    diff "$golden" "$workdir/fig4.prefix" | head -n 20 >&2
    exit 1
}
echo "  first $golden_lines lines identical to the pre-refactor golden"

echo "==== check_algos: stock-path RunRecords are byte-identical ===="
"$MODELS" "json=$workdir/models.json" >/dev/null
python3 - "$workdir/models.json" "$workdir/models_records.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
with open(sys.argv[2], "w") as f:
    json.dump(doc["records"], f, indent=2, sort_keys=True)
    f.write("\n")
EOF
cmp "$workdir/models_records.json" "$GOLDEN_DIR/models_records.golden.json" || {
    echo "check_algos: model RunRecords drifted from the golden" >&2
    diff "$GOLDEN_DIR/models_records.golden.json" \
        "$workdir/models_records.json" | head -n 20 >&2
    exit 1
}
echo "  records subtree identical to the pre-refactor golden"

echo "==== check_algos: functional parity suite ===="
"$TESTS" --gtest_filter='AlgoParity.*:Algorithm*' --gtest_brief=1

echo "==== check_algos: the algorithm matrix ===="
"$FIG4" "json=$workdir/algos.json" > "$workdir/matrix.out"
matrix_line="$(grep '^ALGOMATRIX ' "$workdir/matrix.out")"
echo "  $matrix_line"
ran="$(printf '%s\n' "$matrix_line" | sed -n 's/.*ran=\([0-9]*\).*/\1/p')"
na="$(printf '%s\n' "$matrix_line" | sed -n 's/.*n\/a=\([0-9]*\).*/\1/p')"
if [ -z "$ran" ] || [ "$ran" -le 0 ]; then
    echo "check_algos: matrix ran no cells" >&2
    exit 1
fi
if [ -z "$na" ] || [ "$na" -le 0 ]; then
    echo "check_algos: no n/a holes — SMM-Conv should decline strided" \
        "combos" >&2
    exit 1
fi
python3 - "$workdir/algos.json" "$ran" <<'EOF'
import json
import sys

path, ran = sys.argv[1], int(sys.argv[2])
with open(path) as f:
    doc = json.load(f)
assert doc["schema"] == "cfconv.run_record", "bad schema id"
# Some matrix rows run the zoo additions, so the per-layer algorithm
# field must be present and the document stamped v4.
assert doc["version"] == 4, f"matrix document is v{doc['version']}"
records = doc["records"]
assert len(records) == ran, (len(records), ran)
algos = set()
for record in records:
    for layer in record["layers"]:
        algos.add(layer.get("algorithm", ""))
assert "indirect" in algos and "smm" in algos, sorted(algos)
assert "" in algos, "stock paths must stay unstamped"
print(f"  {len(records)} matrix records, algorithms stamped: "
      + ", ".join(sorted(a for a in algos if a)))
EOF

echo "==== check_algos: algo= narrows the matrix ===="
"$FIG4" "json=$workdir/indirect.json" algo=indirect \
    > "$workdir/indirect.out"
only="$(grep '^ALGOMATRIX ' "$workdir/indirect.out")"
only_ran="$(printf '%s\n' "$only" | sed -n 's/.*ran=\([0-9]*\).*/\1/p')"
if [ -z "$only_ran" ] || [ "$only_ran" -ge "$ran" ] \
    || [ "$only_ran" -le 0 ]; then
    echo "check_algos: algo=indirect did not narrow the matrix" \
        "(ran=$only_ran vs full=$ran)" >&2
    exit 1
fi
if ! "$FIG4" algo=winograd >/dev/null 2>"$workdir/bad.err"; then
    grep -q 'bad algo=winograd' "$workdir/bad.err" || {
        echo "check_algos: algo=winograd error does not name the" \
            "offender" >&2
        exit 1
    }
else
    echo "check_algos: algo=winograd was accepted" >&2
    exit 1
fi
echo "  algo=indirect ran $only_ran cells; algo=winograd rejected"

echo "ALGOS OK"
