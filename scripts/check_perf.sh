#!/usr/bin/env bash
# Perf-regression gate: diff the bench trajectory artifacts
# (BENCH_models.json, BENCH_gemm.json, BENCH_serving.json,
# BENCH_algos.json) against the checked-in baselines in
# scripts/perf_baselines/.
#
#   - Simulated quantities (per accelerator+model seconds / tflops /
#     dram_bytes from BENCH_models.json, per board+scenario from
#     BENCH_serving.json, and per variant+combo from the algorithm
#     matrix in BENCH_algos.json) must match the baseline EXACTLY: the
#     simulators are deterministic, so any drift is a real behavior
#     change — rebaseline deliberately with --update.
#   - Wall-clock quantities (per shape+backend GFLOP/s from
#     BENCH_gemm.json) regress only beyond a noise band: fail when
#     current < baseline * CFCONV_PERF_TOL (default 0.40 — CI machines
#     are noisy; the gate is for the 13.6x-class cliffs, not 5% jitter).
#
# Usage:
#   check_perf.sh             compare (regenerates BENCH files if absent)
#   check_perf.sh --update    regenerate the baselines from a fresh run
#   check_perf.sh --selftest  prove the gate fails on a perturbed baseline
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BASELINE_DIR="scripts/perf_baselines"
TOL="${CFCONV_PERF_TOL:-0.40}"
MODE="${1:-check}"

if ! command -v python3 >/dev/null 2>&1; then
    # The comparison needs structured JSON diffing; without python3 we
    # can only check the artifacts exist. Say so loudly.
    echo "check_perf: python3 unavailable; structural check only" >&2
    [ -s BENCH_models.json ] && [ -s BENCH_gemm.json ] \
        && [ -s BENCH_serving.json ] && [ -s BENCH_algos.json ]
    echo "PERF OK (coarse)"
    exit 0
fi

regen_bench_files() {
    if [ ! -x "$BUILD_DIR/bench/bench_models_report" ]; then
        echo "check_perf: $BUILD_DIR not built; run cmake first" >&2
        exit 1
    fi
    "$BUILD_DIR"/bench/bench_models_report json=BENCH_models.json \
        >/dev/null
    "$BUILD_DIR"/bench/bench_serving json=BENCH_serving.json \
        >/dev/null
    "$BUILD_DIR"/bench/bench_fig4_stride json=BENCH_algos.json \
        >/dev/null
    # Skip the google-benchmark registrations; only the GEMM backend
    # sweep (which writes BENCH_gemm.json in the cwd) is needed.
    "$BUILD_DIR"/bench/bench_micro_kernels \
        --benchmark_filter=NOTHING_MATCHES >/dev/null
}

# extract <models.json> <gemm.json> <serving.json> <algos.json>
# <out.json>: boil the four artifacts down to the compared metrics,
# deterministically ordered. Serving records are simulated quantities
# too — the event loop is serial in simulated time — so they join the
# exact-match set, as do the algorithm-matrix records (keyed by
# variant|combo, so the pre-existing accelerator|model keys are
# untouched when the matrix grows).
extract() {
    python3 - "$1" "$2" "$3" "$4" "$5" <<'EOF'
import json
import sys

models_path, gemm_path, serving_path, algos_path, out_path = (
    sys.argv[1:6])
baseline = {"simulated": {}, "wallclock": {}}
for path in (models_path, serving_path, algos_path):
    with open(path) as f:
        doc = json.load(f)
    for record in doc["records"]:
        key = f"{record['accelerator']}|{record['model']}"
        baseline["simulated"][key] = {
            "seconds": record["seconds"],
            "tflops": record["tflops"],
            "dram_bytes": record["dram_bytes"],
        }
with open(gemm_path) as f:
    points = json.load(f)
for pt in points:
    key = f"{pt['m']}x{pt['n']}x{pt['k']}|{pt['backend']}"
    baseline["wallclock"][key] = {"gflops": pt["gflops"]}
with open(out_path, "w") as f:
    json.dump(baseline, f, indent=2, sort_keys=True)
    f.write("\n")
EOF
}

# compare <baseline.json> <current.json> <tolerance>
compare() {
    python3 - "$1" "$2" "$3" <<'EOF'
import json
import sys

baseline_path, current_path, tol = sys.argv[1], sys.argv[2], float(
    sys.argv[3])
with open(baseline_path) as f:
    baseline = json.load(f)
with open(current_path) as f:
    current = json.load(f)

failures = []
for key, want in sorted(baseline["simulated"].items()):
    got = current["simulated"].get(key)
    if got is None:
        failures.append(f"simulated {key}: missing from current run")
        continue
    for metric, value in sorted(want.items()):
        if got.get(metric) != value:
            failures.append(
                f"simulated {key}: {metric} {got.get(metric)!r} != "
                f"baseline {value!r} (exact match required)")
for key, want in sorted(baseline["wallclock"].items()):
    got = current["wallclock"].get(key)
    if got is None:
        failures.append(f"wallclock {key}: missing from current run")
        continue
    floor = want["gflops"] * tol
    if got["gflops"] < floor:
        failures.append(
            f"wallclock {key}: {got['gflops']:.2f} GFLOP/s < "
            f"{floor:.2f} (baseline {want['gflops']:.2f} * tol {tol})")

for failure in failures:
    print(f"PERF REGRESSION: {failure}", file=sys.stderr)
n_sim = len(baseline["simulated"])
n_wall = len(baseline["wallclock"])
if failures:
    sys.exit(1)
print(f"perf check: {n_sim} simulated + {n_wall} wall-clock points OK")
EOF
}

case "$MODE" in
update | --update)
    regen_bench_files
    mkdir -p "$BASELINE_DIR"
    extract BENCH_models.json BENCH_gemm.json BENCH_serving.json \
        BENCH_algos.json "$BASELINE_DIR/perf_baseline.json"
    echo "wrote $BASELINE_DIR/perf_baseline.json"
    ;;
selftest | --selftest)
    # The gate must demonstrably fail on a perturbed baseline: nudge
    # one simulated number past exactness and one wall-clock number
    # past the noise band, then require the comparison to reject both.
    workdir="$(mktemp -d)"
    trap 'rm -rf "$workdir"' EXIT
    [ -s BENCH_models.json ] && [ -s BENCH_gemm.json ] \
        && [ -s BENCH_serving.json ] && [ -s BENCH_algos.json ] \
        || regen_bench_files
    extract BENCH_models.json BENCH_gemm.json BENCH_serving.json \
        BENCH_algos.json "$workdir/current.json"
    python3 - "$BASELINE_DIR/perf_baseline.json" \
        "$workdir/perturbed.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    baseline = json.load(f)
sim_key = sorted(baseline["simulated"])[0]
baseline["simulated"][sim_key]["seconds"] *= 1.01
wall_key = sorted(baseline["wallclock"])[0]
baseline["wallclock"][wall_key]["gflops"] *= 1000.0
with open(sys.argv[2], "w") as f2:
    json.dump(baseline, f2, indent=2, sort_keys=True)
EOF
    if compare "$workdir/perturbed.json" "$workdir/current.json" \
        "$TOL" 2>/dev/null; then
        echo "check_perf selftest: perturbed baseline PASSED the" \
            "gate (it must fail)" >&2
        exit 1
    fi
    echo "PERF SELFTEST OK (perturbed baseline rejected)"
    ;;
check | --check)
    if [ ! -s "$BASELINE_DIR/perf_baseline.json" ]; then
        echo "check_perf: no baseline; run check_perf.sh --update" >&2
        exit 1
    fi
    [ -s BENCH_models.json ] && [ -s BENCH_gemm.json ] \
        && [ -s BENCH_serving.json ] && [ -s BENCH_algos.json ] \
        || regen_bench_files
    workdir="$(mktemp -d)"
    trap 'rm -rf "$workdir"' EXIT
    extract BENCH_models.json BENCH_gemm.json BENCH_serving.json \
        BENCH_algos.json "$workdir/current.json"
    compare "$BASELINE_DIR/perf_baseline.json" \
        "$workdir/current.json" "$TOL"
    echo "PERF OK"
    ;;
*)
    echo "usage: check_perf.sh [--update|--selftest]" >&2
    exit 2
    ;;
esac
