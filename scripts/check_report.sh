#!/usr/bin/env bash
# Structured-report gate: run the model benches with json=FILE and
# validate the emitted sim::RunRecord documents — schema identifier
# and version, at least one record with a non-empty layers array, and
# finite positive whole-model TFLOPS (the writer emits non-finite
# doubles as null, so a NaN anywhere in the pipeline shows up here).
# Uses python3 when available, otherwise a grep-based fallback that
# checks the same invariants coarsely.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

validate_py() {
    python3 - "$1" <<'EOF'
import json
import math
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc.get("schema") == "cfconv.run_record", "bad schema id"
version = doc.get("version")
assert version in (1, 2, 3, 4, 5), f"bad schema version {version!r}"
if version >= 2:
    # v2 added the document-level metrics object; the trace_file key
    # is optional (present only on traced runs) but never null.
    metrics = doc.get("metrics")
    assert isinstance(metrics, dict), "v2 document without metrics"
    assert isinstance(metrics.get("counters"), dict), "no counters"
    assert isinstance(metrics.get("histograms"), dict), "no histograms"
    assert doc.get("trace_file", "") is not None, "null trace_file"
records = doc.get("records")
assert isinstance(records, list) and records, "no records"
resilient = 0
serving_blocks = 0
for record in records:
    assert record.get("layers"), (
        f"record {record.get('model')} has no layers")
    tflops = record.get("tflops")
    assert isinstance(tflops, (int, float)), (
        f"record {record.get('model')} tflops is {tflops!r}")
    assert math.isfinite(tflops) and tflops > 0, (
        f"record {record.get('model')} tflops = {tflops}")
    # v3 added the per-record resilience block (chaos runs only); a
    # pre-v3 document must not carry one, and a carried one must be
    # internally sane.
    resilience = record.get("resilience")
    if resilience is None:
        continue
    resilient += 1
    assert version >= 3, "resilience block in a pre-v3 document"
    assert resilience.get("active") is True, "inactive resilience block"
    for key in ("faults_seen", "retries", "failovers",
                "layers_failed_over", "layers_resumed"):
        value = resilience.get(key)
        assert isinstance(value, int) and value >= 0, (
            f"resilience {key} = {value!r}")
    backoff = resilience.get("backoff_seconds")
    assert isinstance(backoff, (int, float)) and backoff >= 0, (
        f"resilience backoff_seconds = {backoff!r}")
    assert isinstance(resilience.get("final_backend"), str), (
        "resilience final_backend missing")
    # v5 added the nested serving block (breakers / hedging /
    # degradation); a pre-v5 document must not carry one.
    serving = resilience.get("serving")
    if serving is None:
        continue
    serving_blocks += 1
    assert version >= 5, "serving block in a pre-v5 document"
    assert serving.get("active") is True, "inactive serving block"
    for key in ("breaker_trips", "breaker_probes", "breaker_closes",
                "hedged_batches", "hedge_wins", "hedge_losses",
                "degrade_step_max", "degrade_transitions",
                "brownout_shed", "fallback_batches"):
        value = serving.get(key)
        assert isinstance(value, int) and value >= 0, (
            f"serving {key} = {value!r}")
if version == 3:
    # v3 is stamped only when a record carries a resilience block; v4
    # (the algorithm field) may legitimately have none.
    assert resilient > 0, "v3 document without any resilience block"
algo_layers = 0
for record in records:
    for layer in record["layers"]:
        algorithm = layer.get("algorithm")
        if algorithm is None:
            continue
        algo_layers += 1
        assert version >= 4, "algorithm field in a pre-v4 document"
        assert isinstance(algorithm, str) and algorithm, (
            f"empty layer algorithm in {record.get('model')}")
if version >= 4:
    assert algo_layers > 0, "v4 document without any algorithm field"
if version >= 5:
    assert serving_blocks > 0, "v5 document without any serving block"
print(f"{path}: {len(records)} records OK"
      + (f" ({resilient} resilient)" if resilient else "")
      + (f" ({serving_blocks} serving-resilient)" if serving_blocks
         else "")
      + (f" ({algo_layers} algorithm-stamped layers)" if algo_layers
         else ""))
EOF
}

validate_grep() {
    local path="$1"
    grep -q '"schema": "cfconv.run_record"' "$path"
    grep -Eq '"version": (1|2|3|4|5)' "$path"
    grep -q '"layers": \[' "$path"
    # The writer emits non-finite doubles as null; a null tflops means
    # a NaN/Inf escaped the simulators.
    if grep -q '"tflops": null' "$path"; then
        echo "$path: non-finite tflops" >&2
        return 1
    fi
    echo "$path: OK (grep fallback)"
}

validate() {
    if command -v python3 >/dev/null 2>&1; then
        validate_py "$1"
    else
        validate_grep "$1"
    fi
}

echo "==== check_report: bench_fig15_models ===="
"$BUILD_DIR"/bench/bench_fig15_models "json=$workdir/fig15.json" \
    >/dev/null
validate "$workdir/fig15.json"

echo "==== check_report: bench_fig17_gpu_models ===="
"$BUILD_DIR"/bench/bench_fig17_gpu_models "json=$workdir/fig17.json" \
    >/dev/null
validate "$workdir/fig17.json"

echo "REPORTS OK"
