#!/usr/bin/env bash
# Chrome-trace gate: run the model-zoo bench with the recorder armed
# (trace=FILE) and validate the emitted trace-event document — it must
# parse as JSON, contain spans from every instrumented subsystem
# (model runner, both simulators, the thread pool, the memo caches),
# carry events on both clock domains (pid 1 wall clock, pid 2
# simulated cycles), and the v2 RunRecord written by the same run must
# point back at the trace file. Uses python3 when available, otherwise
# a grep-based fallback that checks the same invariants coarsely.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

trace_file="$workdir/trace.json"
report_file="$workdir/models.json"

echo "==== check_trace: bench_models_report (traced) ===="
# threads=2 forces the thread-pool path even on single-core machines,
# so the pool's queue-depth/worker spans show up in the trace; the
# deterministic pool produces identical numbers at any thread count.
"$BUILD_DIR"/bench/bench_models_report threads=2 "trace=$trace_file" \
    "json=$report_file" >/dev/null

validate_py() {
    python3 - "$trace_file" "$report_file" <<'EOF'
import json
import sys

trace_path, report_path = sys.argv[1], sys.argv[2]
with open(trace_path) as f:
    doc = json.load(f)
events = doc.get("traceEvents")
assert isinstance(events, list) and events, "no traceEvents"

cats = {e.get("cat") for e in events}
for expected in ("runner", "tpusim", "gpusim", "pool", "cache"):
    assert expected in cats, f"no '{expected}' events in the trace"

phases = {e.get("ph") for e in events}
for expected in ("X", "i", "C", "M"):
    assert expected in phases, f"no '{expected}' phase events"

pids = {e.get("pid") for e in events if e.get("ph") != "M"}
assert 1 in pids, "no wall-clock (pid 1) events"
assert 2 in pids, "no simulated-cycles (pid 2) events"

spans = [e for e in events if e.get("ph") == "X"]
assert all(e.get("dur", 0) >= 0 for e in spans), "negative duration"

with open(report_path) as f:
    report = json.load(f)
assert report.get("version") == 2, "traced report is not schema v2"
assert report.get("trace_file") == trace_path, (
    f"report trace_file {report.get('trace_file')!r} != {trace_path!r}")
hists = report.get("metrics", {}).get("histograms", {})
assert "runner.layer_sim_seconds" in hists, "no layer latency histogram"

print(f"{trace_path}: {len(events)} events, "
      f"{len(spans)} spans across {len(cats)} categories OK")
EOF
}

validate_grep() {
    grep -q '"traceEvents"' "$trace_file"
    # Every instrumented subsystem shows up at least once.
    for cat in runner tpusim gpusim pool cache; do
        grep -q "\"cat\": \"$cat\"" "$trace_file"
    done
    # Both clock domains are present.
    grep -q '"pid": 1' "$trace_file"
    grep -q '"pid": 2' "$trace_file"
    # The report points back at the trace.
    grep -q "\"trace_file\": \"$trace_file\"" "$report_file"
    echo "$trace_file: OK (grep fallback)"
}

if command -v python3 >/dev/null 2>&1; then
    validate_py
else
    validate_grep
fi

echo "TRACE OK"
