#!/usr/bin/env bash
# Thread-safety smoke gate: run the parallel-determinism tests (and the
# thread-pool unit tests) at 1 thread, 2 threads, and the machine's full
# core count. All three runs must produce identical (passing) results —
# the parallel kernels are contractually bit-exact with the serial path.
#
# Pair this with the CFCONV_ENABLE_TSAN CMake option for a
# ThreadSanitizer pass:
#   cmake -B build-tsan -DCFCONV_ENABLE_TSAN=ON && cmake --build build-tsan
#   BUILD_DIR=build-tsan scripts/check_threads.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi

NPROC="$(nproc)"

for threads in 1 2 "$NPROC"; do
    echo "==== CFCONV_THREADS=$threads ===="
    CFCONV_THREADS="$threads" \
        ctest --test-dir "$BUILD_DIR" --output-on-failure \
        -R 'Parallel' || {
        echo "FAILED at CFCONV_THREADS=$threads" >&2
        exit 1
    }
done

echo "thread check green at 1, 2, and $NPROC threads"
