#!/usr/bin/env bash
# Serving-resilience gate (breakers + degradation + hedging + crash-
# consistent persistence). Four checks:
#   1. chaos determinism — the headline chaos spec (a flaky preferred
#      chip plus low-rate background outages) emits byte-identical
#      record arrays across repeat runs AND across 1 vs 4 worker
#      threads: fault draws live in the simulator's own seeded stream,
#      never in wall clock or scheduling order;
#   2. resilience headline — under that spec the breakers actually
#      trip, and the resilient board (breakers + degradation ladder)
#      beats the shed-only baseline's goodput at the 50 ms SLO;
#   3. torn-file recovery — truncating the tuned-config database mid-
#      content (stale checksum trailer left behind) makes the next
#      bench_autotune run quarantine and rebuild it ("(recovered)"),
#      and the run after that loads the re-saved file cleanly;
#   4. class-spec validation — malformed classes= values exit 2 naming
#      the offending token.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi
BENCH="$BUILD_DIR/bench/bench_serving"
TUNE="$BUILD_DIR/bench/bench_autotune"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Document-level metrics hold wall-clock histograms; the records array
# (from `"records": [` to EOF) is the deterministic payload.
records_of() {
    awk '/"records": \[/,0' "$1" > "$2"
}

CHAOS='seed=42; serve.chip_down@gpu-v100=0.6; serve.chip_down=0.01'

echo "==== check_resilient_serving: chaos byte-identity (1 vs 4 threads) ===="
"$BENCH" "json=$workdir/t1.json" "faults=$CHAOS" threads=1 \
    > "$workdir/t1.out"
"$BENCH" "json=$workdir/t1b.json" "faults=$CHAOS" threads=1 >/dev/null
"$BENCH" "json=$workdir/t4.json" "faults=$CHAOS" threads=4 >/dev/null
records_of "$workdir/t1.json" "$workdir/t1.records"
records_of "$workdir/t1b.json" "$workdir/t1b.records"
records_of "$workdir/t4.json" "$workdir/t4.records"
cmp -s "$workdir/t1.records" "$workdir/t1b.records" || {
    echo "repeated chaos runs emitted different records" >&2
    exit 1
}
cmp -s "$workdir/t1.records" "$workdir/t4.records" || {
    echo "thread count changed the chaos records" >&2
    exit 1
}
grep -q '"version": 5' "$workdir/t1.json" || {
    echo "chaos document is not schema v5" >&2
    exit 1
}
echo "chaos records identical across runs and thread counts"

echo "==== check_resilient_serving: breakers trip, resilience pays ===="
trips="$(awk -F'measured=' '/breaker trips/{print $2}' "$workdir/t1.out")"
gain="$(awk -F'measured=' '/resilient goodput gain/{print $2}' \
    "$workdir/t1.out")"
if [ -z "$trips" ] || [ "$trips" -lt 1 ]; then
    echo "breaker trips headline missing or zero (got '$trips')" >&2
    exit 1
fi
awk -v g="$gain" 'BEGIN { exit !(g > 1.0) }' || {
    echo "resilient goodput gain $gain <= 1.0 vs shed-only" >&2
    exit 1
}
echo "breakers tripped ($trips), resilient goodput gain ${gain}x"

echo "==== check_resilient_serving: torn tuned-db recovery ===="
db="$workdir/tuned.json"
"$TUNE" "db=$db" mode=greedy > "$workdir/tune1.out"
grep -q '(fresh)' "$workdir/tune1.out" || {
    echo "first autotune run did not start fresh" >&2
    exit 1
}
grep -q '#cfconv-sum:fnv1a:' "$db" || {
    echo "saved tuned db carries no checksum trailer" >&2
    exit 1
}
# Tear the file the way an interrupted write would: half the content,
# stale trailer still attached.
trailer="$(grep '#cfconv-sum:fnv1a:' "$db")"
head -c "$(($(wc -c < "$db") / 2))" "$db" > "$db.torn"
printf '\n%s\n' "$trailer" >> "$db.torn"
mv "$db.torn" "$db"
"$TUNE" "db=$db" mode=greedy > "$workdir/tune2.out"
grep -q '(recovered)' "$workdir/tune2.out" || {
    echo "torn tuned db was not recovered" >&2
    exit 1
}
"$TUNE" "db=$db" mode=greedy > "$workdir/tune3.out"
if grep -Eq '\((recovered|fresh)\)' "$workdir/tune3.out"; then
    echo "re-saved tuned db did not load cleanly" >&2
    exit 1
fi
grep -q 'loaded=0' "$workdir/tune3.out" && {
    echo "re-saved tuned db loaded no entries" >&2
    exit 1
}
echo "torn db quarantined, rebuilt, and reloaded cleanly"

echo "==== check_resilient_serving: class-spec validation ===="
set +e
"$BENCH" classes=bogus >/dev/null 2>"$workdir/cls1.err"
rc1=$?
"$BENCH" classes=alexnet:weighty >/dev/null 2>"$workdir/cls2.err"
rc2=$?
set -e
if [ "$rc1" -ne 2 ] || ! grep -q 'bogus' "$workdir/cls1.err"; then
    echo "classes=bogus exited $rc1 without naming it (want 2)" >&2
    exit 1
fi
if [ "$rc2" -ne 2 ] || ! grep -q 'weighty' "$workdir/cls2.err"; then
    echo "classes=alexnet:weighty exited $rc2 without naming it" >&2
    exit 1
fi
echo "malformed class specs exit 2 naming the offender"

echo "RESILIENT SERVING OK"
