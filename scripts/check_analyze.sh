#!/usr/bin/env bash
# Trace-analytics gate: record single-model traces on both backends
# (model=/backend= selection keeps them small), push them through the
# offline analyzer, and validate the emitted cfconv.trace_analysis
# document — schema + version, a non-empty timeline table, the
# fill/compute identity (span == compute + exposed_fill + idle), and
# the cross-backend diff aligning every layer. The analysis must be a
# pure function of the trace bytes: repeated runs are byte-identical,
# and sim-domain analysis (wall=off) is byte-identical whether the
# trace was recorded at 1 or 4 threads. Also exercises the metrics=
# bench dump and the exit-2 naming-offender contract for bad CLI args.
# Uses python3 when available, otherwise a grep-based fallback.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
if [ ! -d "$BUILD_DIR" ]; then
    echo "build directory '$BUILD_DIR' not found; run cmake first" >&2
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

bench="$BUILD_DIR/bench/bench_models_report"
analyze="$BUILD_DIR/bench/trace_analyze"

echo "==== check_analyze: record single-model traces ===="
# json= redirects each run's RunRecord into the scratch dir so the
# checked-in BENCH_models.json golden is never touched.
"$bench" model=AlexNet backend=tpu-v2 threads=1 \
    "trace=$workdir/tpu_t1.trace" "metrics=$workdir/metrics.json" \
    "json=$workdir/rec_t1.json" >/dev/null
"$bench" model=AlexNet backend=tpu-v2 threads=4 \
    "trace=$workdir/tpu_t4.trace" "json=$workdir/rec_t4.json" >/dev/null
"$bench" model=AlexNet backend=gpu-v100 threads=1 \
    "trace=$workdir/gpu_t1.trace" "json=$workdir/rec_gpu.json" >/dev/null

echo "==== check_analyze: analyze + schema ===="
"$analyze" "$workdir/tpu_t1.trace" "json=$workdir/analysis.json" \
    > "$workdir/report_a.txt"
grep -q '^ANALYZE ' "$workdir/report_a.txt"

validate_py() {
    python3 - "$workdir/analysis.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "cfconv.trace_analysis", doc.get("schema")
assert doc.get("version") == 1, "unexpected analysis schema version"

timelines = doc.get("timelines")
assert isinstance(timelines, list) and timelines, "no timelines"
for t in timelines:
    span = t["span_cycles"]
    parts = (t["compute_cycles"] + t["exposed_fill_cycles"]
             + t["idle_cycles"])
    assert abs(span - parts) <= 1e-6 * max(span, 1.0), (
        f"{t['key']}: span {span} != compute+exposed_fill+idle {parts}")
    assert 0.0 <= t["overlap_ratio"] <= 1.0, t["key"]

cp = doc["critical_path"]
assert cp["span_cycles"] > 0, "empty critical path"
fracs = (cp["compute_frac"] + cp["exposed_fill_frac"]
         + cp["idle_frac"])
assert abs(fracs - 1.0) <= 1e-6, f"critical-path fracs sum {fracs}"

assert "wall" in doc, "wall section missing from wall-clock trace"
print(f"{sys.argv[1]}: {len(timelines)} timelines OK")
EOF
}

validate_grep() {
    grep -q '"schema": "cfconv.trace_analysis"' "$workdir/analysis.json"
    grep -q '"version": 1' "$workdir/analysis.json"
    grep -q '"timelines"' "$workdir/analysis.json"
    grep -q '"critical_path"' "$workdir/analysis.json"
    grep -q '"wall"' "$workdir/analysis.json"
    echo "$workdir/analysis.json: OK (grep fallback)"
}

if command -v python3 >/dev/null 2>&1; then
    validate_py
else
    validate_grep
fi

# The metrics= satellite dumps the same schema as the RunRecord
# metrics block: counters + histograms, deterministically ordered.
grep -q '"counters"' "$workdir/metrics.json"
grep -q '"histograms"' "$workdir/metrics.json"

echo "==== check_analyze: determinism ===="
# Same trace analyzed twice -> byte-identical report and document.
# (The "wrote FILE" echo names the json= path, which differs by
# construction; everything else must match to the byte.)
"$analyze" "$workdir/tpu_t1.trace" "json=$workdir/analysis_b.json" \
    > "$workdir/report_b.txt"
cmp <(grep -v '^wrote ' "$workdir/report_a.txt") \
    <(grep -v '^wrote ' "$workdir/report_b.txt")
cmp "$workdir/analysis.json" "$workdir/analysis_b.json"

# Sim-domain analysis is a pure function of the simulated work, not of
# how many worker threads recorded it (wall=off drops the wall-clock
# section, which legitimately differs across thread counts). The
# headline echoes the input path, so give both traces the same
# relative name and run from their directories: every byte must match.
abs_analyze="$(cd "$(dirname "$analyze")" && pwd)/trace_analyze"
mkdir -p "$workdir/t1" "$workdir/t4"
cp "$workdir/tpu_t1.trace" "$workdir/t1/in.trace"
cp "$workdir/tpu_t4.trace" "$workdir/t4/in.trace"
(cd "$workdir/t1" && "$abs_analyze" in.trace wall=off) \
    > "$workdir/sim_t1.txt"
(cd "$workdir/t4" && "$abs_analyze" in.trace wall=off) \
    > "$workdir/sim_t4.txt"
cmp "$workdir/sim_t1.txt" "$workdir/sim_t4.txt"

echo "==== check_analyze: cross-backend diff ===="
diff_out="$("$analyze" "$workdir/tpu_t1.trace" \
    "diff=$workdir/gpu_t1.trace" "json=$workdir/diff.json")"
printf '%s\n' "$diff_out" | grep -q '^DIFF aligned='
if printf '%s\n' "$diff_out" \
        | grep -q '^DIFF aligned=0\|left_only=[1-9]\|right_only=[1-9]'; then
    echo "cross-backend diff failed to align the shared layers" >&2
    printf '%s\n' "$diff_out" | grep '^DIFF' >&2
    exit 1
fi
grep -q '"schema": "cfconv.trace_analysis_diff"' "$workdir/diff.json"

echo "==== check_analyze: naming offenders exit 2 ===="
expect_exit2() {
    local rc=0
    "$@" >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "expected exit 2 from: $* (got $rc)" >&2
        exit 1
    fi
}
expect_exit2 "$analyze"
expect_exit2 "$analyze" "$workdir/tpu_t1.trace" frobnicate=1
expect_exit2 "$analyze" "$workdir/tpu_t1.trace" "$workdir/gpu_t1.trace"
expect_exit2 "$bench" model=not-a-model
expect_exit2 "$bench" backend=abacus

echo "ANALYZE OK"
