#!/usr/bin/env bash
# Build everything, run the full test suite, regenerate every table and
# figure, and exercise the examples. This is the one-command gate used
# before any release.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "==== tests ===="
ctest --test-dir build --output-on-failure

echo "==== benches (paper tables/figures + ablations) ===="
for b in build/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "---- $b"
    "$b"
done

echo "==== examples ===="
build/examples/quickstart
build/examples/training_step
build/examples/full_inference
build/examples/resnet_on_tpu >/dev/null && echo "resnet_on_tpu: ok"
build/examples/strided_conv_gpu >/dev/null && echo "strided_conv_gpu: ok"
build/examples/design_explorer config=configs/tpu_v2.cfg >/dev/null \
    && echo "design_explorer: ok"
build/examples/cfconv_cli n=8 ci=64 hw=56 co=128 k=3 s=2 p=1 >/dev/null \
    && echo "cfconv_cli: ok"

echo "ALL GREEN"
