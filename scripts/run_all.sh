#!/usr/bin/env bash
# Build everything, run the full test suite, regenerate every table and
# figure, and exercise the examples. This is the one-command gate used
# before any release.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when available; otherwise fall back to the default
# generator (usually Unix Makefiles) so the gate runs everywhere. An
# already-configured build directory keeps its generator — CMake
# refuses to switch generators in place.
if [ -f build/CMakeCache.txt ]; then
    cmake -B build
elif command -v ninja >/dev/null 2>&1; then
    cmake -B build -G Ninja
else
    echo "ninja not found; using default CMake generator"
    cmake -B build
fi
cmake --build build -j "$(nproc)"

echo "==== tests ===="
ctest --test-dir build --output-on-failure

echo "==== benches (paper tables/figures + ablations) ===="
wall_summary=""
for b in build/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "---- $b"
    out="$("$b")"
    printf '%s\n' "$out"
    wall_summary+="$(printf '%s\n' "$out" | grep '^WALL' || true)"$'\n'
done

echo "==== structured run reports ===="
scripts/check_report.sh

echo "==== chrome-trace recorder ===="
scripts/check_trace.sh

echo "==== offline trace analytics ===="
scripts/check_analyze.sh

echo "==== fault injection + resilience ===="
scripts/check_faults.sh

echo "==== request-level serving ===="
scripts/check_serving.sh

echo "==== serving resilience (breakers + degradation + recovery) ===="
scripts/check_resilient_serving.sh

echo "==== perf regression gate ===="
scripts/check_perf.sh
scripts/check_perf.sh --selftest

echo "==== algorithm zoo (byte-identity + parity + matrix) ===="
scripts/check_algos.sh

echo "==== autotuner + tuned-config database ===="
scripts/check_tune.sh

echo "==== examples ===="
build/examples/quickstart
build/examples/training_step
build/examples/full_inference
build/examples/resnet_on_tpu >/dev/null && echo "resnet_on_tpu: ok"
build/examples/strided_conv_gpu >/dev/null && echo "strided_conv_gpu: ok"
build/examples/design_explorer config=configs/tpu_v2.cfg >/dev/null \
    && echo "design_explorer: ok"
build/examples/cfconv_cli n=8 ci=64 hw=56 co=128 k=3 s=2 p=1 >/dev/null \
    && echo "cfconv_cli: ok"

echo "==== bench wall-clock summary ===="
if printf '%s' "$wall_summary" | grep -q '^WALL'; then
    printf '%s' "$wall_summary" | grep '^WALL' | sort -k2
else
    echo "(no WALL lines captured)"
fi

echo "ALL GREEN"
