/**
 * @file
 * TPU design-space explorer: vary the systolic array size, vector-
 * memory word size, and HBM bandwidth from the command line and see
 * how a chosen model responds — the workflow behind Fig 16. The run
 * goes through sim::TpuAccelerator + sim::ModelRunner, so `json=FILE`
 * can dump the full per-layer RunRecord for offline analysis.
 *
 * Usage: design_explorer [array=128] [word=8] [gbps=700]
 *                        [model=vgg16] [config=configs/tpu_v2.cfg]
 *                        [json=FILE]
 *
 * A config file (see configs/) is applied first; command-line keys
 * override it.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "sim/report.h"
#include "sim/tpu_accelerator.h"

using namespace cfconv;

namespace {

models::ModelSpec
pickModel(const std::string &name, Index batch)
{
    auto zoo = models::allModels(batch);
    zoo.push_back(models::mobilenetv1(batch));
    for (auto &m : zoo) {
        std::string lower = m.name;
        for (auto &c : lower)
            c = static_cast<char>(std::tolower(c));
        if (lower == name)
            return m;
    }
    fatal("unknown model '%s' (try alexnet, vgg16, resnet, ...)",
          name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    tpusim::TpuConfig cfg = tpusim::TpuConfig::tpuV2();
    Index array = 0, word = 0;
    double gbps = 0.0;
    std::string model_name = "vgg16";
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::sscanf(argv[i], "array=%lld", (long long *)&array) == 1)
            continue;
        if (std::sscanf(argv[i], "word=%lld", (long long *)&word) == 1)
            continue;
        if (std::sscanf(argv[i], "gbps=%lf", &gbps) == 1)
            continue;
        if (std::strncmp(argv[i], "model=", 6) == 0) {
            model_name = argv[i] + 6;
            continue;
        }
        if (std::strncmp(argv[i], "config=", 7) == 0) {
            cfg = tpusim::tpuConfigFrom(Config::fromFile(argv[i] + 7),
                                        cfg);
            continue;
        }
        if (std::strncmp(argv[i], "json=", 5) == 0 &&
            argv[i][5] != '\0') {
            json_path = argv[i] + 5;
            continue;
        }
        std::fprintf(stderr,
                     "usage: %s [array=N] [word=N] [gbps=X] [model=M] "
                     "[config=FILE] [json=FILE]\n",
                     argv[0]);
        return 1;
    }

    // Command-line keys override the config file.
    if (array > 0) {
        cfg.array.rows = cfg.array.cols = array;
        cfg.vectorMemories = array;
    }
    if (word > 0)
        cfg.wordElems = word;
    if (gbps > 0.0)
        cfg.dram.clockGhz *= gbps / cfg.dram.peakGBps();

    const models::ModelSpec model = pickModel(model_name, 8);
    const sim::TpuAccelerator accelerator("tpu-explorer", cfg);
    const sim::RunRecord r =
        sim::ModelRunner(accelerator).runModel(model);

    std::printf("Configuration: %lldx%lld array, word %lld, "
                "%.0f GB/s, peak %.1f TFLOPS\n",
                (long long)cfg.array.rows, (long long)cfg.array.cols,
                (long long)cfg.wordElems, cfg.dram.peakGBps(),
                cfg.peakTflops());
    std::printf("%s (batch 8): %.3f ms, %.1f effective TFLOPS "
                "(%.0f%% of peak)\n",
                model.name.c_str(), r.seconds * 1e3, r.tflops,
                100.0 * r.tflops / cfg.peakTflops());

    Table table("Slowest five distinct layers");
    table.setHeader({"geometry", "us", "TFLOPS", "util"});
    // Find the five largest per-layer times.
    std::vector<std::pair<double, size_t>> order;
    for (size_t i = 0; i < r.layers.size(); ++i)
        order.push_back({r.layers[i].seconds, i});
    std::sort(order.rbegin(), order.rend());
    for (size_t i = 0; i < order.size() && i < 5; ++i) {
        const auto &lr = r.layers[order[i].second];
        table.addRow({lr.geometry, cell("%.1f", lr.seconds * 1e6),
                      cell("%.1f", lr.tflops),
                      cell("%.0f%%", 100.0 * lr.utilization)});
    }
    table.print();

    if (!json_path.empty() && sim::writeRunRecords(json_path, {r}))
        std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
