/**
 * @file
 * Strided-convolution case study on the simulated V100: compare the
 * channel-first kernel (with and without inter-tile reuse), the
 * cuDNN-like channel-last kernel, explicit im2col, and the idealized
 * GEMM reference across strides 1/2/4 for a ResNet-style layer.
 */

#include <cstdio>

#include "common/table.h"
#include "gpusim/gpu_sim.h"
#include "tensor/conv_params.h"

using namespace cfconv;

int
main()
{
    gpusim::GpuSim sim((gpusim::GpuConfig::v100()));

    Table table("Strided conv on V100 (batch 8, 64ch 112x112, k3)");
    table.setHeader({"stride", "algorithm", "us", "TFLOPS", "bound"});

    struct Algo
    {
        const char *name;
        gpusim::GpuRunOptions options;
    };
    gpusim::GpuRunOptions cf, cf_noreuse, cl, ex, go;
    cf.algorithm = gpusim::GpuAlgorithm::ImplicitChannelFirst;
    cf_noreuse = cf;
    cf_noreuse.interTileReuse = false;
    cl.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
    cl.vendorTuned = true;
    ex.algorithm = gpusim::GpuAlgorithm::ExplicitIm2col;
    go.algorithm = gpusim::GpuAlgorithm::GemmOnly;
    const Algo algos[] = {
        {"channel-first (+reuse)", cf},
        {"channel-first (naive order)", cf_noreuse},
        {"channel-last (cuDNN-like)", cl},
        {"explicit im2col", ex},
        {"GEMM reference", go},
    };

    for (Index stride : {1L, 2L, 4L}) {
        const auto p = tensor::makeConv(8, 64, 112, 128, 3, stride, 1);
        for (const auto &a : algos) {
            const auto r = sim.runConv(p, a.options);
            table.addRow({cell("%lld", (long long)stride), a.name,
                          cell("%.1f", r.seconds * 1e6),
                          cell("%.1f", r.tflops),
                          r.memoryBound ? "memory" : "compute"});
        }
    }
    table.print();

    std::printf("\nNote how the channel-last kernel loses throughput as "
                "the stride grows while channel-first holds on -- the "
                "core claim of the paper (Figs 4a/18a).\n");
    return 0;
}
