/**
 * @file
 * Simulate ResNet-50 inference (batch 8) on a TPU-v2 core and print a
 * per-layer performance report: where the multi-tile optimization
 * kicks in, which layers are memory-exposed, and the end-to-end time.
 * The backend is driven through the unified sim::Accelerator layer;
 * the TPU-only columns (multi-tile factor, exposed fill) come out of
 * LayerRecord::extras. Every repeated layer instance is simulated
 * individually — the layer memo cache collapses the repeats (ResNet's
 * bottleneck blocks repeat heavily), and the cache report at the end
 * shows the savings.
 */

#include <cstdio>

#include "common/table.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "tpusim/layer_cache.h"

using namespace cfconv;

int
main()
{
    const models::ModelSpec model = models::resnet50(8);
    const auto accelerator = sim::makeAccelerator("tpu-v2");
    auto &cache = tpusim::LayerCache::instance();
    cache.clear();

    Table table("ResNet-50 on TPU-v2, batch 8 (per distinct layer)");
    table.setHeader({"layer", "geometry", "x", "us", "TFLOPS", "util",
                     "T", "exposed fill"});

    double total = 0.0;
    Flops flops = 0;
    for (const auto &layer : model.layers) {
        // Simulate every instance of the layer (not result * count):
        // repeats after the first are served by the layer memo cache.
        sim::LayerRecord r;
        for (Index rep = 0; rep < layer.count; ++rep) {
            r = accelerator->runLayer(layer.params);
            total += r.seconds;
        }
        flops +=
            layer.params.flops() * static_cast<Flops>(layer.count);
        table.addRow(
            {layer.name, r.geometry,
             cell("%lld", (long long)layer.count),
             cell("%.1f", r.seconds * 1e6), cell("%.1f", r.tflops),
             cell("%.0f%%", 100.0 * r.utilization),
             cell("%lld", (long long)r.extras.at("multiTile")),
             cell("%.0f%%",
                  100.0 * r.extras.at("exposedFillFrac"))});
    }
    table.print();

    std::printf("\nEnd-to-end: %.3f ms, %.1f effective TFLOPS "
                "(peak %.1f)\n",
                total * 1e3,
                static_cast<double>(flops) / total / 1e12,
                accelerator->peakTflops());

    // Cross-check against the shared model runner (its per-layer
    // lookups all hit the now-warm cache).
    const sim::RunRecord whole =
        sim::ModelRunner(*accelerator).runModel(model);
    std::printf("runModel cross-check: %.3f ms\n", whole.seconds * 1e3);

    std::printf("\nLayer cache: %llu hits / %llu misses "
                "(%.0f%% hit rate, %llu entries)\n",
                (unsigned long long)cache.hits(),
                (unsigned long long)cache.misses(),
                100.0 * cache.hitRate(),
                (unsigned long long)cache.entries());
    const StatGroup stats = accelerator->cacheStats();
    for (const auto &[name, value] : stats.counters())
        std::printf("  %s = %.0f\n", name.c_str(), value);
    return 0;
}
