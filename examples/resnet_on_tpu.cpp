/**
 * @file
 * Simulate ResNet-50 inference (batch 8) on a TPU-v2 core and print a
 * per-layer performance report: where the multi-tile optimization
 * kicks in, which layers are memory-exposed, and the end-to-end time.
 */

#include <cstdio>

#include "common/table.h"
#include "models/model_zoo.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main()
{
    const models::ModelSpec model = models::resnet50(8);
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));

    Table table("ResNet-50 on TPU-v2, batch 8 (per distinct layer)");
    table.setHeader({"layer", "geometry", "x", "us", "TFLOPS", "util",
                     "T", "exposed fill"});

    double total = 0.0;
    Flops flops = 0;
    for (const auto &layer : model.layers) {
        const auto r = sim.runConv(layer.params);
        total += r.seconds * static_cast<double>(layer.count);
        flops +=
            layer.params.flops() * static_cast<Flops>(layer.count);
        table.addRow(
            {layer.name, layer.params.toString(),
             cell("%lld", (long long)layer.count),
             cell("%.1f", r.seconds * 1e6), cell("%.1f", r.tflops),
             cell("%.0f%%", 100.0 * r.arrayUtilization),
             cell("%lld", (long long)r.multiTile),
             cell("%.0f%%", r.cycles
                      ? 100.0 * static_cast<double>(r.exposedFillCycles) /
                            static_cast<double>(r.cycles)
                      : 0.0)});
    }
    table.print();

    std::printf("\nEnd-to-end: %.3f ms, %.1f effective TFLOPS "
                "(peak %.1f)\n",
                total * 1e3,
                static_cast<double>(flops) / total / 1e12,
                sim.config().peakTflops());
    return 0;
}
