/**
 * @file
 * Training-step example: run the forward pass, backward-data, and
 * backward-filter of a convolution with the channel-first decomposed
 * schedule, verify the gradients against direct references, and
 * estimate the cost of all three passes on a TPU-v2 core.
 */

#include <cstdio>

#include "im2col/conv_backward.h"
#include "im2col/implicit_conv.h"
#include "tensor/conv_ref.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main()
{
    const tensor::ConvParams layer =
        tensor::makeConv(/*batch=*/4, /*C_I=*/32, /*hw=*/28,
                         /*C_O=*/64, /*k=*/3, /*stride=*/1, /*pad=*/1);
    std::printf("Training step for %s\n", layer.toString().c_str());

    tensor::Tensor input = tensor::makeInput(layer);
    tensor::Tensor filter = tensor::makeFilter(layer);
    input.fillRandom(1);
    filter.fillRandom(2);

    // Forward.
    const tensor::Tensor out =
        im2col::convImplicitTpuStrategy(layer, input, filter, 128);
    std::printf("forward:          max |diff| vs direct = %.2e\n",
                static_cast<double>(out.maxAbsDiff(
                    tensor::convDirect(layer, input, filter))));

    // Upstream gradient (pretend loss).
    tensor::Tensor grad_out(layer.batch, layer.outChannels,
                            layer.outH(), layer.outW());
    grad_out.fillRandom(3);

    // Backward passes with the decomposed schedule.
    const tensor::Tensor grad_in =
        im2col::convBackwardDataImplicit(layer, grad_out, filter);
    const tensor::Tensor grad_w =
        im2col::convBackwardFilterImplicit(layer, input, grad_out);
    std::printf("backward-data:    max |diff| vs direct = %.2e\n",
                static_cast<double>(grad_in.maxAbsDiff(
                    im2col::convBackwardDataDirect(layer, grad_out,
                                                   filter))));
    std::printf("backward-filter:  max |diff| vs direct = %.2e\n",
                static_cast<double>(grad_w.maxAbsDiff(
                    im2col::convBackwardFilterDirect(layer, input,
                                                     grad_out))));

    // Cost estimate: each pass is a set of decomposed GEMMs with the
    // same shapes (M x C_I x C_O per tile, transposed operands for the
    // gradients), so the forward TPU estimate applies to all three.
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    const auto fwd = sim.runConv(layer);
    const auto dgrad = sim.runGemm(layer.gemmM(), layer.gemmN(),
                                   layer.gemmK());
    const auto wgrad = sim.runGemm(layer.gemmK(), layer.gemmM(),
                                   layer.gemmN());
    std::printf("\nTPU-v2 estimates: forward %.1f us, backward-data "
                "%.1f us, backward-filter %.1f us\n",
                fwd.seconds * 1e6, dgrad.seconds * 1e6,
                wgrad.seconds * 1e6);
    std::printf("Full training step (fwd + both bwd): %.1f us\n",
                (fwd.seconds + dgrad.seconds + wgrad.seconds) * 1e6);
    return 0;
}
