/**
 * @file
 * Quickstart: the cfconv public API in one file.
 *
 * 1. Describe a convolution layer (ConvParams).
 * 2. Execute it functionally with the implicit channel-first engine and
 *    check it against direct convolution.
 * 3. Estimate its performance on a TPU-v2 core (TPUSim) and a V100
 *    (GpuSim).
 */

#include <cstdio>

#include "gpusim/gpu_sim.h"
#include "im2col/implicit_conv.h"
#include "tensor/conv_ref.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main()
{
    // A ResNet-style layer: batch 8, 64 -> 64 channels, 56x56, 3x3.
    const tensor::ConvParams layer =
        tensor::makeConv(/*batch=*/8, /*in_channels=*/64, /*in_hw=*/56,
                         /*out_channels=*/64, /*kernel=*/3,
                         /*stride=*/1, /*pad=*/1);
    std::printf("Layer: %s\n", layer.toString().c_str());
    std::printf("GEMM view: M=%lld K=%lld N=%lld (%.2f GFLOPs)\n",
                (long long)layer.gemmM(), (long long)layer.gemmK(),
                (long long)layer.gemmN(),
                static_cast<double>(layer.flops()) / 1e9);

    // --- functional execution -------------------------------------
    tensor::Tensor input = tensor::makeInput(layer);
    tensor::Tensor filter = tensor::makeFilter(layer);
    input.fillRandom(1);
    filter.fillRandom(2);

    im2col::ImplicitConvStats stats;
    const tensor::Tensor out = im2col::convImplicitTpuStrategy(
        layer, input, filter, /*array_rows=*/128, &stats);
    const tensor::Tensor ref = tensor::convDirect(layer, input, filter);
    std::printf("\nImplicit channel-first vs direct conv: max |diff| = "
                "%.2e (multi-tile GEMM passes: %lld)\n",
                static_cast<double>(out.maxAbsDiff(ref)),
                (long long)stats.tileGemms);

    // --- TPU-v2 performance estimate ------------------------------
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));
    const tpusim::TpuLayerResult t = tpu.runConv(layer);
    std::printf("\nTPU-v2 (one core): %.1f us, %.1f TFLOPS, array "
                "utilization %.0f%%, multi-tile=%lld\n",
                t.seconds * 1e6, t.tflops, 100.0 * t.arrayUtilization,
                (long long)t.multiTile);

    // --- V100 performance estimate --------------------------------
    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));
    const gpusim::GpuKernelResult g = gpu.runConv(layer);
    std::printf("V100 (channel-first): %.1f us, %.1f TFLOPS, %s-bound\n",
                g.seconds * 1e6, g.tflops,
                g.memoryBound ? "memory" : "compute");
    return 0;
}
