/**
 * @file
 * End-to-end functional inference through a small CNN built entirely
 * from this library's layers: convolution (implicit channel-first),
 * batch norm, ReLU, max pooling, a grouped (depthwise) stage, and a
 * residual add. Every convolution is cross-checked against the direct
 * reference as it runs, and the TPU-v2 cost of the conv stack is
 * estimated at the end through the unified sim::Accelerator layer.
 */

#include <cstdio>

#include "im2col/grouped.h"
#include "im2col/implicit_conv.h"
#include "sim/accelerator.h"
#include "tensor/conv_ref.h"
#include "tensor/nn_ops.h"

using namespace cfconv;
using tensor::Tensor;

namespace {

/** Implicit conv + parity check against the direct reference. */
Tensor
checkedConv(const tensor::ConvParams &p, const Tensor &input,
            const Tensor &filter, double &worst_diff)
{
    const Tensor out =
        im2col::convImplicitTpuStrategy(p, input, filter, 128);
    const double diff = static_cast<double>(
        out.maxAbsDiff(tensor::convDirect(p, input, filter)));
    worst_diff = std::max(worst_diff, diff);
    return out;
}

tensor::BatchNormParams
identityBn(Index channels)
{
    tensor::BatchNormParams bn;
    bn.mean.assign(static_cast<size_t>(channels), 0.1f);
    bn.variance.assign(static_cast<size_t>(channels), 1.5f);
    bn.gamma.assign(static_cast<size_t>(channels), 1.2f);
    bn.beta.assign(static_cast<size_t>(channels), 0.05f);
    return bn;
}

} // namespace

int
main()
{
    const Index batch = 2;
    double worst = 0.0;
    std::vector<tensor::ConvParams> conv_stack;

    // Stage 1: stem conv 3 -> 16, 32x32.
    auto p1 = tensor::makeConv(batch, 3, 32, 16, 3, 1, 1);
    conv_stack.push_back(p1);
    Tensor x = tensor::makeInput(p1);
    x.fillRandom(1);
    Tensor w1 = tensor::makeFilter(p1);
    w1.fillRandom(2);
    x = tensor::relu(
        tensor::batchNorm(checkedConv(p1, x, w1, worst),
                          identityBn(16)));
    std::printf("stem:      %lldx%lldx%lld\n", (long long)x.c(),
                (long long)x.h(), (long long)x.w());

    // Stage 2: pool to 16x16, conv 16 -> 32.
    x = tensor::maxPool2d(x, {});
    auto p2 = tensor::makeConv(batch, 16, 16, 32, 3, 1, 1);
    conv_stack.push_back(p2);
    Tensor w2 = tensor::makeFilter(p2);
    w2.fillRandom(3);
    x = tensor::relu(checkedConv(p2, x, w2, worst));
    std::printf("stage 2:   %lldx%lldx%lld\n", (long long)x.c(),
                (long long)x.h(), (long long)x.w());

    // Stage 3: depthwise 3x3 + pointwise 32 -> 64 (separable block)
    // with a residual around the depthwise.
    im2col::GroupedConvParams dw;
    dw.base = tensor::makeConv(batch, 32, 16, 32, 3, 1, 1);
    dw.groups = 32;
    dw.validate();
    Tensor wd(32, 1, 3, 3);
    wd.fillRandom(4);
    const Tensor residual = x;
    x = tensor::relu(tensor::add(
        im2col::convGroupedImplicit(dw, x, wd), residual));
    auto p3 = tensor::makeConv(batch, 32, 16, 64, 1);
    conv_stack.push_back(p3);
    Tensor w3 = tensor::makeFilter(p3);
    w3.fillRandom(5);
    x = tensor::relu(checkedConv(p3, x, w3, worst));
    std::printf("separable: %lldx%lldx%lld (depthwise occupancy on a "
                "128-row array: %.1f%%)\n",
                (long long)x.c(), (long long)x.h(), (long long)x.w(),
                100.0 * im2col::groupedRowOccupancy(dw, 128));

    // Stage 4: strided conv 64 -> 64 s2, global average pool, logits.
    auto p4 = tensor::makeConv(batch, 64, 16, 64, 3, 2, 1);
    conv_stack.push_back(p4);
    Tensor w4 = tensor::makeFilter(p4);
    w4.fillRandom(6);
    x = tensor::relu(checkedConv(p4, x, w4, worst));
    tensor::PoolParams gap;
    gap.kernelH = gap.kernelW = x.h();
    gap.strideH = gap.strideW = x.h();
    x = tensor::avgPool2d(x, gap);
    std::printf("head:      %lldx%lldx%lld\n", (long long)x.c(),
                (long long)x.h(), (long long)x.w());

    float checksum = 0.0f;
    for (Index i = 0; i < x.size(); ++i)
        checksum += x.data()[i];
    std::printf("\nlogit checksum: %.4f | worst conv |diff| vs direct: "
                "%.2e\n", static_cast<double>(checksum), worst);

    // TPU cost of the conv stack, through the accelerator layer.
    const auto tpu = sim::makeAccelerator("tpu-v2");
    double total = 0.0;
    for (const auto &p : conv_stack)
        total += tpu->runLayer(p).seconds;
    std::printf("TPU-v2 estimate for the conv stack: %.1f us\n",
                total * 1e6);
    return worst < 5e-3 ? 0 : 1;
}
