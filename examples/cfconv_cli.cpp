/**
 * @file
 * cfconv command-line layer profiler: describe a convolution on the
 * command line, pick a target and algorithm, get the performance
 * estimate. The "swiss-army knife" entry point for exploring the
 * simulators without writing code.
 *
 * Usage:
 *   cfconv_cli n=8 ci=64 hw=56 co=128 k=3 s=1 p=1 [d=1]
 *              [target=tpu|gpu|both] [algo=cf|cl|explicit|gemm]
 *              [tiles=0] [reuse=1] [s2d=0]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "gpusim/gpu_sim.h"
#include "tpusim/energy.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

namespace {

struct CliArgs
{
    Index n = 8, ci = 64, hw = 56, co = 128, k = 3, s = 1, p = 1,
          d = 1;
    std::string target = "both";
    std::string algo = "cf";
    Index tiles = 0;
    bool reuse = true;
    bool s2d = false;
};

bool
parseArg(const char *arg, CliArgs &out)
{
    long long v;
    char buf[64];
    if (std::sscanf(arg, "n=%lld", &v) == 1) { out.n = v; return true; }
    if (std::sscanf(arg, "ci=%lld", &v) == 1) { out.ci = v; return true; }
    if (std::sscanf(arg, "hw=%lld", &v) == 1) { out.hw = v; return true; }
    if (std::sscanf(arg, "co=%lld", &v) == 1) { out.co = v; return true; }
    if (std::sscanf(arg, "k=%lld", &v) == 1) { out.k = v; return true; }
    if (std::sscanf(arg, "s=%lld", &v) == 1) { out.s = v; return true; }
    if (std::sscanf(arg, "p=%lld", &v) == 1) { out.p = v; return true; }
    if (std::sscanf(arg, "d=%lld", &v) == 1) { out.d = v; return true; }
    if (std::sscanf(arg, "tiles=%lld", &v) == 1) {
        out.tiles = v;
        return true;
    }
    if (std::sscanf(arg, "reuse=%lld", &v) == 1) {
        out.reuse = v != 0;
        return true;
    }
    if (std::sscanf(arg, "s2d=%lld", &v) == 1) {
        out.s2d = v != 0;
        return true;
    }
    if (std::sscanf(arg, "target=%63s", buf) == 1) {
        out.target = buf;
        return true;
    }
    if (std::sscanf(arg, "algo=%63s", buf) == 1) {
        out.algo = buf;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        if (!parseArg(argv[i], args)) {
            std::fprintf(stderr,
                         "usage: %s n= ci= hw= co= k= s= p= d= "
                         "target=tpu|gpu|both "
                         "algo=cf|cl|explicit|gemm tiles= reuse=0|1 "
                         "s2d=0|1\n",
                         argv[0]);
            return 1;
        }
    }

    const auto layer = tensor::makeConv(args.n, args.ci, args.hw,
                                        args.co, args.k, args.s,
                                        args.p, args.d);
    std::printf("layer:  %s\n", layer.toString().c_str());
    std::printf("GEMM:   M=%lld K=%lld N=%lld (%.3f GFLOPs)\n",
                (long long)layer.gemmM(), (long long)layer.gemmK(),
                (long long)layer.gemmN(),
                static_cast<double>(layer.flops()) / 1e9);

    if (args.target == "tpu" || args.target == "both") {
        tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
        tpusim::TpuRunOptions o;
        if (args.algo == "cl")
            o.algorithm = tpusim::ConvAlgorithm::ChannelLast;
        else if (args.algo == "explicit")
            o.algorithm = tpusim::ConvAlgorithm::Explicit;
        else
            CFCONV_FATAL_IF(args.algo != "cf" && args.algo != "gemm",
                            "unknown algo '%s'", args.algo.c_str());
        o.multiTileOverride = args.tiles;
        o.spaceToDepthFirstLayer = args.s2d;

        const auto r = args.algo == "gemm"
            ? sim.runGemm(layer.gemmM(), layer.gemmK(), layer.gemmN(),
                          layer.dataType)
            : sim.runConv(layer, o);
        const auto e = tpusim::layerEnergy(sim.config(), r);
        std::printf("\nTPU-v2: %.2f us | %.2f TFLOPS | util %.0f%% | "
                    "multi-tile %lld\n",
                    r.seconds * 1e6, r.tflops,
                    100.0 * r.arrayUtilization, (long long)r.multiTile);
        std::printf("        DRAM %.2f MB | port util %.0f%% | "
                    "%.2f pJ/MAC (dram %.0f%%, sram %.0f%%, mac "
                    "%.0f%%)\n",
                    static_cast<double>(r.dramBytes) / 1e6,
                    100.0 * r.portUtilization, e.pjPerMac,
                    100.0 * e.dramPj / e.totalPj,
                    100.0 * e.sramPj / e.totalPj,
                    100.0 * e.macPj / e.totalPj);
    }

    if (args.target == "gpu" || args.target == "both") {
        gpusim::GpuSim sim((gpusim::GpuConfig::v100()));
        gpusim::GpuRunOptions o;
        if (args.algo == "cl") {
            o.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
            o.vendorTuned = true;
        } else if (args.algo == "explicit") {
            o.algorithm = gpusim::GpuAlgorithm::ExplicitIm2col;
        } else if (args.algo == "gemm") {
            o.algorithm = gpusim::GpuAlgorithm::GemmOnly;
        } else {
            o.algorithm = gpusim::GpuAlgorithm::ImplicitChannelFirst;
        }
        o.interTileReuse = args.reuse;
        const auto r = sim.runConv(layer, o);
        std::printf("\nV100:   %.2f us | %.2f TFLOPS | %s-bound | "
                    "DRAM %.2f MB%s\n",
                    r.seconds * 1e6, r.tflops,
                    r.memoryBound ? "memory" : "compute",
                    static_cast<double>(r.dramBytes) / 1e6,
                    r.transformSeconds > 0.0 ? " (incl. transform)"
                                             : "");
    }
    return 0;
}
