/**
 * @file
 * Model report generator: per-layer CSV for every network in the zoo
 * (the paper's seven plus MobileNetV1) on both simulators — the raw
 * data behind the end-to-end figures, in a form downstream analysis
 * (spreadsheets, plotting scripts) can consume directly.
 *
 * Usage: report_models [batch]   (CSV on stdout)
 */

#include <cstdio>
#include <cstdlib>

#include "gpusim/gpu_sim.h"
#include "models/model_zoo.h"
#include "tpusim/energy.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    const Index batch =
        argc > 1 ? std::strtoll(argv[1], nullptr, 10) : 8;
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));
    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));

    std::printf("model,layer,count,groups,geometry,M,K,N,gflops,"
                "tpu_us,tpu_tflops,tpu_util,tpu_multitile,"
                "tpu_dram_mb,tpu_pj_per_mac,"
                "gpu_us,gpu_tflops,gpu_bound\n");

    auto zoo = models::allModels(batch);
    zoo.push_back(models::mobilenetv1(batch));
    for (const auto &model : zoo) {
        for (const auto &layer : model.layers) {
            const auto &p = layer.params;
            const auto tr =
                tpu.runGroupedConv(p, layer.groups);
            const auto te = tpusim::layerEnergy(tpu.config(), tr);
            const auto gr = gpu.runConv(layer.sliceParams());
            const double gpu_us =
                gr.seconds * 1e6 * static_cast<double>(layer.groups);
            std::printf(
                "%s,%s,%lld,%lld,%s,%lld,%lld,%lld,%.4f,"
                "%.3f,%.3f,%.4f,%lld,%.3f,%.3f,%.3f,%.3f,%s\n",
                model.name.c_str(), layer.name.c_str(),
                (long long)layer.count, (long long)layer.groups,
                p.toString().c_str(), (long long)p.gemmM(),
                (long long)p.gemmK(), (long long)p.gemmN(),
                static_cast<double>(layer.flops()) / 1e9,
                tr.seconds * 1e6, tr.tflops, tr.arrayUtilization,
                (long long)tr.multiTile,
                static_cast<double>(tr.dramBytes) / 1e6, te.pjPerMac,
                gpu_us,
                static_cast<double>(layer.flops()) /
                    (gpu_us * 1e-6) / 1e12,
                gr.memoryBound ? "memory" : "compute");
        }
    }
    return 0;
}
