/**
 * @file
 * Model report generator: per-layer CSV for every network in the zoo
 * (the paper's seven plus MobileNetV1) on both simulators — the raw
 * data behind the end-to-end figures, in a form downstream analysis
 * (spreadsheets, plotting scripts) can consume directly. Both
 * backends are driven through the unified sim::Accelerator layer;
 * TPU-only fields (multi-tile, energy) and GPU-only fields
 * (memory/compute bound) come out of LayerRecord::extras. The memo
 * caches collapse repeated shapes; their hit/miss totals go to
 * stderr so the CSV on stdout stays clean.
 *
 * Usage: report_models [batch]   (CSV on stdout)
 */

#include <cstdio>
#include <cstdlib>

#include "models/model_zoo.h"
#include "sim/accelerator.h"

using namespace cfconv;

namespace {

void
cacheReport(const sim::Accelerator &accelerator)
{
    const StatGroup stats = accelerator.cacheStats();
    std::fprintf(stderr, "cache %s:", accelerator.name().c_str());
    for (const auto &[name, value] : stats.counters())
        std::fprintf(stderr, " %s=%.0f", name.c_str(), value);
    std::fprintf(stderr, "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const Index batch =
        argc > 1 ? std::strtoll(argv[1], nullptr, 10) : 8;
    const auto tpu = sim::makeAccelerator("tpu-v2");
    const auto gpu = sim::makeAccelerator("gpu-v100");

    std::printf("model,layer,count,groups,geometry,M,K,N,gflops,"
                "tpu_us,tpu_tflops,tpu_util,tpu_multitile,"
                "tpu_dram_mb,tpu_pj_per_mac,"
                "gpu_us,gpu_tflops,gpu_bound\n");

    auto zoo = models::allModels(batch);
    zoo.push_back(models::mobilenetv1(batch));
    for (const auto &model : zoo) {
        for (const auto &layer : model.layers) {
            const auto &p = layer.params;
            sim::RunOptions options;
            options.groups = layer.groups;
            const sim::LayerRecord tr = tpu->runLayer(p, options);
            const sim::LayerRecord gr = gpu->runLayer(p, options);
            std::printf(
                "%s,%s,%lld,%lld,%s,%lld,%lld,%lld,%.4f,"
                "%.3f,%.3f,%.4f,%lld,%.3f,%.3f,%.3f,%.3f,%s\n",
                model.name.c_str(), layer.name.c_str(),
                (long long)layer.count, (long long)layer.groups,
                p.toString().c_str(), (long long)p.gemmM(),
                (long long)p.gemmK(), (long long)p.gemmN(),
                static_cast<double>(layer.flops()) / 1e9,
                tr.seconds * 1e6, tr.tflops, tr.utilization,
                (long long)tr.extras.at("multiTile"),
                static_cast<double>(tr.dramBytes) / 1e6,
                tr.extras.at("pjPerMac"), gr.seconds * 1e6, gr.tflops,
                gr.extras.at("memoryBound") != 0.0 ? "memory"
                                                   : "compute");
        }
    }
    cacheReport(*tpu);
    cacheReport(*gpu);
    return 0;
}
