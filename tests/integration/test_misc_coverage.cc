/** @file Coverage for seams not exercised elsewhere: non-default
 *  layouts through the op library, rectangular arrays, table
 *  rendering, and cross-knob monotonicities. */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/table.h"
#include "gpusim/gpu_sim.h"
#include "systolic/systolic_timing.h"
#include "tensor/conv_ref.h"
#include "tensor/nn_ops.h"
#include "tensor/winograd.h"

namespace cfconv {
namespace {

using tensor::Layout;
using tensor::makeConv;
using tensor::Tensor;

TEST(MiscCoverage, PoolingIsLayoutAgnostic)
{
    Tensor nchw(2, 3, 6, 6, Layout::NCHW);
    nchw.fillRandom(501);
    const Tensor nhwc = nchw.toLayout(Layout::NHWC);
    const Tensor hwcn = nchw.toLayout(Layout::HWCN);
    const Tensor a = tensor::maxPool2d(nchw, {});
    const Tensor b = tensor::maxPool2d(nhwc, {});
    const Tensor c = tensor::maxPool2d(hwcn, {});
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f);
    EXPECT_EQ(a.maxAbsDiff(c), 0.0f);
    // Outputs inherit the input's physical layout.
    EXPECT_EQ(b.layout(), Layout::NHWC);
}

TEST(MiscCoverage, BatchNormPreservesLayout)
{
    Tensor t(1, 2, 4, 4, Layout::HWCN);
    t.fillRandom(503);
    tensor::BatchNormParams bn;
    bn.mean = {0.0f, 0.0f};
    bn.variance = {1.0f, 1.0f};
    const Tensor out = tensor::batchNorm(t, bn);
    EXPECT_EQ(out.layout(), Layout::HWCN);
    EXPECT_LT(out.maxAbsDiff(t), 1e-4f); // identity BN (eps only)
}

TEST(MiscCoverage, RectangularSystolicArraysTimeCorrectly)
{
    systolic::SystolicConfig wide;
    wide.rows = 32;
    wide.cols = 256;
    systolic::SystolicConfig tall;
    tall.rows = 256;
    tall.cols = 32;
    // Same MACs, different tiling: K=256/N=256 needs 8 row-tiles on
    // the wide array but 8 column-tiles on the tall one; pass counts
    // coincide, cycles differ only via fill/drain skew.
    const auto w = systolic::gemmTiming(wide, 1000, 256, 256);
    const auto t = systolic::gemmTiming(tall, 1000, 256, 256);
    EXPECT_EQ(w.macs, t.macs);
    EXPECT_EQ(w.cycles, t.cycles); // symmetric fill/drain terms
}

TEST(MiscCoverage, TablePrintsToStream)
{
    Table tab("smoke");
    tab.setHeader({"a", "b"});
    tab.addRow({"1", "22"});
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    tab.print(tmp);
    std::rewind(tmp);
    char buf[256] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
    std::fclose(tmp);
    ASSERT_GT(n, 0u);
    const std::string out(buf);
    EXPECT_NE(out.find("smoke"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(MiscCoverage, TransformSecondsMonotonicInBatch)
{
    gpusim::GpuSim sim((gpusim::GpuConfig::v100()));
    double prev = 0.0;
    for (Index batch : {1L, 8L, 64L}) {
        const double t = sim.explicitTransformSeconds(
            makeConv(batch, 64, 28, 64, 3, 1, 1));
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(MiscCoverage, WinogradWorksOnNonDefaultInputLayout)
{
    const auto p = makeConv(1, 3, 8, 2, 3, 1, 1);
    Tensor input = tensor::makeInput(p, Layout::NHWC);
    input.fillRandom(507);
    Tensor filter = tensor::makeFilter(p);
    filter.fillRandom(509);
    const Tensor wino = tensor::convWinograd(p, input, filter);
    const Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(wino.maxAbsDiff(ref), 1e-3f);
}

TEST(MiscCoverage, ReluAndAddComposeAcrossLayouts)
{
    Tensor a(1, 2, 3, 3, Layout::CHWN);
    Tensor b(1, 2, 3, 3, Layout::NCHW);
    a.fillRandom(511);
    b.fillRandom(513);
    // add() works on logical coordinates regardless of layout.
    const Tensor sum = tensor::add(a, b);
    for (Index c = 0; c < 2; ++c)
        for (Index h = 0; h < 3; ++h)
            for (Index w = 0; w < 3; ++w)
                EXPECT_FLOAT_EQ(sum.at(0, c, h, w),
                                a.at(0, c, h, w) + b.at(0, c, h, w));
    const Tensor r = tensor::relu(sum);
    for (Index i = 0; i < r.size(); ++i)
        EXPECT_GE(r.data()[i], 0.0f);
}

} // namespace
} // namespace cfconv
