/** @file Cross-module integration tests: training convergence, model
 *  zoo consistency, simulator agreement, combined-feature paths. */

#include <gtest/gtest.h>

#include "gpusim/gpu_sim.h"
#include "im2col/conv_backward.h"
#include "im2col/implicit_conv.h"
#include "im2col/sparse.h"
#include "models/model_zoo.h"
#include "tensor/conv_ref.h"
#include "tensor/quantize.h"
#include "tpusim/tpu_sim.h"

namespace cfconv {
namespace {

using im2col::convImplicit;
using tensor::ConvParams;
using tensor::makeConv;
using tensor::Tensor;

float
mseLoss(const Tensor &a, const Tensor &b)
{
    float total = 0.0f;
    for (Index i = 0; i < a.size(); ++i) {
        const float d = a.data()[i] - b.data()[i];
        total += d * d;
    }
    return total / static_cast<float>(a.size());
}

TEST(Integration, GradientStepReducesLoss)
{
    // One SGD step with the decomposed backward-filter gradient must
    // reduce an MSE regression loss: forward + backward + update,
    // end to end.
    const ConvParams p = makeConv(2, 3, 8, 4, 3, 1, 1);
    Tensor input = tensor::makeInput(p);
    Tensor target(p.batch, p.outChannels, p.outH(), p.outW());
    Tensor filter = tensor::makeFilter(p);
    input.fillRandom(301);
    target.fillRandom(302);
    filter.fillRandom(303);

    const Tensor y0 = convImplicit(p, input, filter);
    const float loss0 = mseLoss(y0, target);

    // dL/dY = 2 (Y - T) / numel.
    Tensor grad_out(p.batch, p.outChannels, p.outH(), p.outW());
    for (Index i = 0; i < grad_out.size(); ++i)
        grad_out.data()[i] = 2.0f * (y0.data()[i] - target.data()[i]) /
                             static_cast<float>(y0.size());
    const Tensor grad_w =
        im2col::convBackwardFilterImplicit(p, input, grad_out);

    const float lr = 0.1f;
    for (Index i = 0; i < filter.size(); ++i)
        filter.data()[i] -= lr * grad_w.data()[i];

    const float loss1 = mseLoss(convImplicit(p, input, filter), target);
    EXPECT_LT(loss1, loss0);
}

TEST(Integration, TenGradientStepsKeepImproving)
{
    const ConvParams p = makeConv(1, 2, 6, 2, 3, 1, 1);
    Tensor input = tensor::makeInput(p);
    input.fillRandom(311);
    // The target is realizable: produced by a hidden "true" filter.
    Tensor true_filter = tensor::makeFilter(p);
    true_filter.fillRandom(313);
    const Tensor target = tensor::convDirect(p, input, true_filter);

    Tensor filter = tensor::makeFilter(p);
    filter.fillRandom(317);
    float prev = mseLoss(convImplicit(p, input, filter), target);
    const float initial = prev;
    for (int step = 0; step < 10; ++step) {
        const Tensor y = convImplicit(p, input, filter);
        Tensor grad_out(p.batch, p.outChannels, p.outH(), p.outW());
        for (Index i = 0; i < grad_out.size(); ++i)
            grad_out.data()[i] = 2.0f *
                                 (y.data()[i] - target.data()[i]) /
                                 static_cast<float>(y.size());
        const Tensor grad_w =
            im2col::convBackwardFilterImplicit(p, input, grad_out);
        for (Index i = 0; i < filter.size(); ++i)
            filter.data()[i] -= 0.5f * grad_w.data()[i];
        const float loss = mseLoss(convImplicit(p, input, filter),
                                   target);
        EXPECT_LE(loss, prev * 1.001f) << "step " << step;
        prev = loss;
    }
    EXPECT_LT(prev, 0.5f * initial);
}

TEST(Integration, ModelZooLayersRunOnBothSimulators)
{
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));
    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));
    for (const auto &model : models::allModels(8)) {
        double tpu_s = 0.0, gpu_s = 0.0;
        for (const auto &layer : model.layers) {
            const auto tr = tpu.runConv(layer.params);
            const auto gr = gpu.runConv(layer.params);
            ASSERT_GT(tr.seconds, 0.0) << model.name;
            ASSERT_GT(gr.seconds, 0.0) << model.name;
            ASSERT_LE(tr.tflops,
                      tpu.config().peakTflops() * 1.001);
            ASSERT_LE(gr.tflops,
                      gpu.config().peakTflops() * 1.001);
            tpu_s += tr.seconds;
            gpu_s += gr.seconds;
        }
        // The V100 has ~5.5x the TPU core's peak: whole models must
        // land in a sane relative band.
        EXPECT_LT(gpu_s, tpu_s) << model.name;
        EXPECT_GT(gpu_s, tpu_s / 40.0) << model.name;
    }
}

TEST(Integration, VggPipelineDimensionsChain)
{
    // VGG is a straight pipeline with 2x2 pooling between stages: each
    // conv's input channels equal the previous conv's output channels,
    // and spatial sizes only ever halve.
    const auto vgg = models::vgg16(1);
    for (size_t i = 1; i < vgg.layers.size(); ++i) {
        const auto &prev = vgg.layers[i - 1].params;
        const auto &cur = vgg.layers[i].params;
        EXPECT_EQ(cur.inChannels, prev.outChannels)
            << vgg.layers[i].name;
        EXPECT_TRUE(cur.inH == prev.outH() ||
                    cur.inH == prev.outH() / 2)
            << vgg.layers[i].name;
    }
}

TEST(Integration, SparseQuantizedMultiTileReorderedConvIsCorrect)
{
    // Pile every feature onto one convolution: bf16 operands,
    // tile-pruned filter, multi-tile grouping, reuse-greedy order.
    const ConvParams p = makeConv(2, 4, 9, 4, 3, 2, 1);
    Tensor input = tensor::makeInput(p);
    Tensor filter = tensor::makeFilter(p);
    input.fillRandom(331);
    filter.fillRandom(337);

    const Tensor q_input = tensor::quantize(input, DataType::Bf16);
    const Tensor q_filter = tensor::quantize(
        im2col::pruneFilterTiles(p, filter, 3.0 / 9.0),
        DataType::Bf16);

    im2col::ImplicitConvOptions options;
    options.tilesPerGroup = im2col::tpuMultiTileParam(128, p);
    options.order = im2col::TileOrder::ReuseGreedy;
    const Tensor fancy = convImplicit(p, q_input, q_filter, options);
    const Tensor plain = tensor::convDirect(p, q_input, q_filter);
    EXPECT_LT(fancy.maxAbsDiff(plain), 1e-3f);
}

TEST(Integration, StridedAdvantageHoldsAcrossTheModelZoo)
{
    // Fig 18a at zoo scale: on every stride>1 layer with C_I >= 16,
    // the channel-first kernel matches or beats the channel-last one.
    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));
    gpusim::GpuRunOptions cf, cl;
    cf.algorithm = gpusim::GpuAlgorithm::ImplicitChannelFirst;
    cl.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
    for (const auto &layer : models::stridedLayers(8)) {
        if (layer.params.inChannels < 16)
            continue;
        EXPECT_LE(gpu.runConv(layer.params, cf).seconds,
                  gpu.runConv(layer.params, cl).seconds * 1.001)
            << layer.name;
    }
}

} // namespace
} // namespace cfconv
