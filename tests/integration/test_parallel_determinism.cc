/**
 * @file
 * Determinism gate for the parallel execution paths: every parallelized
 * functional kernel must be bit-exact with its serial execution
 * (CFCONV_THREADS=1), and the layer memo cache must be invisible to
 * results. Run via scripts/check_threads.sh at 1, 2, and N threads.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "im2col/implicit_conv.h"
#include "tensor/conv_ref.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"
#include "tpusim/layer_cache.h"
#include "tpusim/tpu_sim.h"

namespace cfconv {
namespace {

using tensor::makeConv;

/** Run @p fn serially and at 4 lanes; return both results. */
template <typename Fn>
auto
serialAndParallel(Fn &&fn)
{
    parallel::setThreads(1);
    auto serial = fn();
    parallel::setThreads(4);
    auto par = fn();
    parallel::setThreads(0);
    return std::make_pair(std::move(serial), std::move(par));
}

void
expectBitExact(const tensor::Matrix &a, const tensor::Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) * static_cast<size_t>(
                                              a.rows() * a.cols())),
              0);
}

void
expectBitExact(const tensor::Tensor &a, const tensor::Tensor &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) *
                              static_cast<size_t>(a.size())),
              0);
}

class ParallelDeterminism : public ::testing::Test
{
  protected:
    void TearDown() override { parallel::setThreads(0); }
};

TEST_F(ParallelDeterminism, GemmBitExact)
{
    tensor::Matrix a(73, 41), b(41, 57);
    a.fillRandom(1);
    b.fillRandom(2);
    auto [serial, par] = serialAndParallel([&] {
        tensor::Matrix c(73, 57);
        tensor::gemm(a, b, c);
        return c;
    });
    expectBitExact(serial, par);
}

TEST_F(ParallelDeterminism, GemmAccumulateBitExact)
{
    tensor::Matrix a(64, 32), b(32, 48);
    a.fillRandom(3);
    b.fillRandom(4);
    auto [serial, par] = serialAndParallel([&] {
        tensor::Matrix c(64, 48);
        c.fillRandom(5); // accumulate on top of a non-zero C
        tensor::gemmAccumulate(a, b, c);
        return c;
    });
    expectBitExact(serial, par);
}

TEST_F(ParallelDeterminism, GemmBlockedBitExact)
{
    tensor::Matrix a(100, 50), b(50, 60);
    a.fillRandom(6);
    b.fillRandom(7);
    auto [serial, par] = serialAndParallel([&] {
        tensor::Matrix c(100, 60);
        tensor::gemmBlocked(a, b, c, 16, 16, 16);
        return c;
    });
    expectBitExact(serial, par);
}

TEST_F(ParallelDeterminism, DirectConvBitExact)
{
    const auto p = makeConv(2, 16, 14, 24, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(8);
    filter.fillRandom(9);
    auto [serial, par] = serialAndParallel(
        [&] { return tensor::convDirect(p, input, filter); });
    expectBitExact(serial, par);
}

TEST_F(ParallelDeterminism, ImplicitConvBitExact)
{
    const auto p = makeConv(2, 8, 14, 16, 3, 2, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(10);
    filter.fillRandom(11);
    im2col::ImplicitConvOptions options;
    options.tilesPerGroup = im2col::tpuMultiTileParam(128, p);
    auto [serial, par] = serialAndParallel(
        [&] { return im2col::convImplicit(p, input, filter, options); });
    expectBitExact(serial, par);
}

TEST_F(ParallelDeterminism, Im2colLowerBitExact)
{
    const auto p = makeConv(2, 12, 13, 20, 3, 2, 1);
    tensor::Tensor input = tensor::makeInput(p);
    input.fillRandom(12);
    auto [serial, par] = serialAndParallel([&] {
        return tensor::im2colLower(p, input,
                                   tensor::ColumnOrder::ChannelFirst);
    });
    expectBitExact(serial, par);
}

void
expectSameResult(const tpusim::TpuLayerResult &a,
                 const tpusim::TpuLayerResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.tflops, b.tflops);
    EXPECT_EQ(a.arrayUtilization, b.arrayUtilization);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.multiTile, b.multiTile);
    EXPECT_EQ(a.portUtilization, b.portUtilization);
    EXPECT_EQ(a.peakOnChipBytes, b.peakOnChipBytes);
    EXPECT_EQ(a.vecMemOps, b.vecMemOps);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.fillCycles, b.fillCycles);
    EXPECT_EQ(a.exposedFillCycles, b.exposedFillCycles);
}

TEST_F(ParallelDeterminism, CachedRunConvMatchesUncached)
{
    auto &cache = tpusim::LayerCache::instance();
    const bool was_enabled = cache.enabled();
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    const auto p = makeConv(8, 64, 28, 128, 3, 1, 1);

    cache.setEnabled(false);
    const auto uncached = sim.runConv(p);

    cache.setEnabled(true);
    cache.clear();
    const auto miss = sim.runConv(p); // cold: computes and inserts
    const auto hit = sim.runConv(p);  // warm: served from the cache
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.entries(), 1u);

    expectSameResult(uncached, miss);
    expectSameResult(uncached, hit);

    cache.clear();
    cache.setEnabled(was_enabled);
}

TEST_F(ParallelDeterminism, CacheKeySeparatesDifferentRuns)
{
    const auto cfg = tpusim::TpuConfig::tpuV2();
    const auto p = makeConv(8, 64, 28, 128, 3, 1, 1);
    tpusim::TpuRunOptions a, b;
    b.multiTileOverride = 2;
    EXPECT_NE(tpusim::layerCacheKey(cfg, p, a),
              tpusim::layerCacheKey(cfg, p, b));
    auto cfg2 = cfg;
    cfg2.array.rows = 256;
    EXPECT_NE(tpusim::layerCacheKey(cfg, p, a),
              tpusim::layerCacheKey(cfg2, p, a));
    EXPECT_NE(tpusim::layerCacheKey(cfg, p, a),
              tpusim::gemmCacheKey(cfg, p.gemmM(), p.gemmK(),
                                   p.gemmN(), p.dataType));
}

TEST_F(ParallelDeterminism, RunModelParallelMatchesSerial)
{
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    const auto model = models::resnet50(4);
    auto &cache = tpusim::LayerCache::instance();
    const bool was_enabled = cache.enabled();
    // Disable the cache so both runs do the full computation.
    cache.setEnabled(false);
    auto [serial, par] =
        serialAndParallel([&] { return sim.runModel(model); });
    cache.setEnabled(was_enabled);
    EXPECT_EQ(serial.seconds, par.seconds);
    EXPECT_EQ(serial.tflops, par.tflops);
    ASSERT_EQ(serial.layers.size(), par.layers.size());
    for (size_t i = 0; i < serial.layers.size(); ++i)
        expectSameResult(serial.layers[i], par.layers[i]);
}

} // namespace
} // namespace cfconv
