/** @file Tests for the banked DRAM timing model. */

#include <gtest/gtest.h>

#include "common/logging.h"

#include "dram/dram_model.h"

namespace cfconv::dram {
namespace {

TEST(DramConfig, PeakBandwidthMatchesTargets)
{
    EXPECT_NEAR(DramConfig::hbm700().peakGBps(), 700.0, 10.0);
    EXPECT_NEAR(DramConfig::hbm900().peakGBps(), 900.0, 15.0);
}

TEST(DramModel, SequentialStreamApproachesPeak)
{
    DramModel model(DramConfig::hbm700());
    std::vector<Request> stream;
    for (Bytes addr = 0; addr < 8 * 1024 * 1024; addr += 4096)
        stream.push_back({addr, 4096});
    model.service(stream);
    EXPECT_GT(model.lastEffectiveGBps(),
              0.7 * model.config().peakGBps());
}

TEST(DramModel, SubRowRequestsHitOpenRows)
{
    DramModel model(DramConfig::hbm700());
    // Four 256-byte requests per 1 KB row: 3 of 4 accesses hit.
    std::vector<Request> stream;
    for (Bytes addr = 0; addr < 64 * 1024; addr += 256)
        stream.push_back({addr, 256});
    model.service(stream);
    EXPECT_NEAR(model.lastRowHitRate(), 0.75, 0.05);
}

TEST(DramModel, ScatteredSmallRequestsLoseBandwidth)
{
    DramModel model(DramConfig::hbm700());
    // 4-byte requests scattered with a large prime stride: every access
    // opens a new row.
    std::vector<Request> stream;
    Bytes addr = 0;
    for (int i = 0; i < 4096; ++i) {
        stream.push_back({addr, 4});
        addr += 1048583; // prime > row size * banks
    }
    model.service(stream);
    EXPECT_LT(model.lastEffectiveGBps(),
              0.05 * model.config().peakGBps());
}

TEST(DramModel, ContiguousBeatsStridedForSameVolume)
{
    // The Fig 7 contrast: same bytes, different layouts.
    DramModel model(DramConfig::hbm700());
    std::vector<Request> contiguous;
    for (Bytes addr = 0; addr < 1024 * 1024; addr += 1024)
        contiguous.push_back({addr, 1024});
    const Cycles c_cont = model.service(contiguous);

    std::vector<Request> strided;
    for (Bytes addr = 0; addr < 16 * 1024 * 1024 && strided.size() <
                         1024;
         addr += 16 * 1024)
        strided.push_back({addr, 1024});
    const Cycles c_str = model.service(strided);
    EXPECT_LE(c_cont, c_str);
}

TEST(DramModel, RowCrossingRequestSplits)
{
    DramConfig cfg = DramConfig::hbm700();
    DramModel model(cfg);
    // One request spanning two rows must pay at most two activations
    // and still complete.
    const Cycles t =
        model.service({{cfg.rowBytes - 64, 128}});
    EXPECT_GT(t, 0u);
    EXPECT_LT(model.lastRowHitRate(), 1.0);
}

TEST(DramModel, ZeroLengthRequestIsFatal)
{
    DramModel model(DramConfig::hbm700());
    EXPECT_THROW(model.service({{0, 0}}), FatalError);
}

TEST(TransferCycles, ClosedFormScalesLinearly)
{
    const Cycles one = transferCycles(1000, 700.0, 0.7, 1.0);
    const Cycles two = transferCycles(2000, 700.0, 0.7, 1.0);
    EXPECT_NEAR(static_cast<double>(two),
                2.0 * static_cast<double>(one), 2.0);
    // Efficiency of 0.5 doubles the time.
    EXPECT_NEAR(
        static_cast<double>(transferCycles(1000, 700.0, 0.7, 0.5)),
        2.0 * static_cast<double>(one), 2.0);
}

TEST(TransferCycles, RejectsNonPositiveRates)
{
    EXPECT_THROW(transferCycles(100, 0.0, 0.7, 1.0), FatalError);
    EXPECT_THROW(transferCycles(100, 700.0, 0.7, 0.0), FatalError);
}

} // namespace
} // namespace cfconv::dram
