/** @file Tests for DRAM page policies and address mappings. */

#include <gtest/gtest.h>

#include "dram/dram_model.h"

namespace cfconv::dram {
namespace {

std::vector<Request>
subRowStream(Bytes total, Bytes chunk)
{
    std::vector<Request> s;
    for (Bytes addr = 0; addr < total; addr += chunk)
        s.push_back({addr, chunk});
    return s;
}

TEST(PagePolicy, OpenPageWinsOnRowLocality)
{
    // Four sub-row accesses per row: open page hits 3 of 4.
    DramConfig open_cfg = DramConfig::hbm700();
    DramConfig closed_cfg = open_cfg;
    closed_cfg.pagePolicy = PagePolicy::Closed;
    const auto stream = subRowStream(256 * 1024, 256);

    DramModel open_m(open_cfg), closed_m(closed_cfg);
    const Cycles open_t = open_m.service(stream);
    const Cycles closed_t = closed_m.service(stream);
    EXPECT_LE(open_t, closed_t);
    EXPECT_NEAR(open_m.lastRowHitRate(), 0.75, 0.05);
    EXPECT_EQ(closed_m.lastRowHitRate(), 0.0);
}

TEST(PagePolicy, ClosedPageAvoidsPrechargeOnConflicts)
{
    // Ping-pong between two rows of the same bank: every open-page
    // access is a conflict (precharge + activate); closed page pays
    // only the activate.
    DramConfig cfg = DramConfig::hbm700();
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    std::vector<Request> stream;
    for (int i = 0; i < 256; ++i)
        stream.push_back({static_cast<Bytes>(i % 2) * cfg.rowBytes *
                              64, // distinct rows, same bank
                          64});

    DramConfig closed_cfg = cfg;
    closed_cfg.pagePolicy = PagePolicy::Closed;
    const Cycles open_t = DramModel(cfg).service(stream);
    const Cycles closed_t = DramModel(closed_cfg).service(stream);
    EXPECT_LT(closed_t, open_t);
}

TEST(AddressMapping, InterleavingGivesStreamsBankParallelism)
{
    DramConfig inter = DramConfig::hbm700();
    DramConfig contig = inter;
    contig.mapping = AddressMapping::BankContiguous;
    // A long sequential stream: interleaved rotates across banks and
    // channels; contiguous serializes on one bank's channel.
    std::vector<Request> stream;
    for (Bytes addr = 0; addr < 4 * 1024 * 1024; addr += 4096)
        stream.push_back({addr, 4096});

    DramModel inter_m(inter), contig_m(contig);
    const Cycles inter_t = inter_m.service(stream);
    const Cycles contig_t = contig_m.service(stream);
    EXPECT_LT(2 * inter_t, contig_t);
    EXPECT_GT(inter_m.lastEffectiveGBps(),
              2.0 * contig_m.lastEffectiveGBps());
}

TEST(AddressMapping, ContiguousStillCompletesCorrectVolume)
{
    DramConfig contig = DramConfig::hbm700();
    contig.mapping = AddressMapping::BankContiguous;
    DramModel m(contig);
    const auto stream = subRowStream(64 * 1024, 1024);
    EXPECT_GT(m.service(stream), 0u);
    EXPECT_GT(m.lastEffectiveGBps(), 0.0);
}

TEST(DramConfig, RowMissPenaltyIsPrechargePlusActivate)
{
    DramConfig cfg;
    cfg.tPrecharge = 10;
    cfg.tActivate = 7;
    EXPECT_EQ(cfg.rowMissPenalty(), 17u);
}

} // namespace
} // namespace cfconv::dram
