/** @file Tests for DRAM access-stream builders (Fig 7 reproduction). */

#include <gtest/gtest.h>

#include "dram/access_pattern.h"
#include "tensor/conv_params.h"

namespace cfconv::dram {
namespace {

using tensor::makeConv;

TEST(TileFillStream, VolumeCoversFootprintInEveryLayout)
{
    // Streams must move at least the footprint; layouts whose strided
    // gathers leave sub-transaction gaps fetch over them (bounded
    // waste), so the volume may exceed the footprint but not wildly.
    ConvParams p = makeConv(4, 8, 9, 4, 3, 2, 1);
    p.dataType = DataType::Fp16;
    const FilterTile tile{1, 1};
    const Bytes footprint =
        static_cast<Bytes>(im2col::tileFillElems(p, tile)) * 2;
    for (Layout layout : {Layout::NCHW, Layout::NHWC, Layout::HWCN,
                          Layout::CHWN}) {
        const Bytes vol = streamBytes(tileFillStream(p, tile, layout));
        EXPECT_GE(vol, footprint) << tensor::layoutName(layout);
        EXPECT_LE(vol, 4 * footprint) << tensor::layoutName(layout);
    }
}

TEST(TileFillStream, WideChannelHwcnStreamsAreExact)
{
    // With C_I*N*elem runs larger than a transaction, the HWCN stream
    // carries zero waste even under stride.
    ConvParams p = makeConv(8, 32, 17, 4, 3, 2, 1);
    p.dataType = DataType::Fp16;
    const FilterTile tile{1, 1};
    const Bytes footprint =
        static_cast<Bytes>(im2col::tileFillElems(p, tile)) * 2;
    EXPECT_EQ(streamBytes(tileFillStream(p, tile, Layout::HWCN)),
              footprint);
}

TEST(TileFillStream, HwcnCoalescesStride1RowsIntoSingleBursts)
{
    // With stride 1 and HWCN, a full footprint row (W x C x N elements)
    // is one contiguous burst.
    const ConvParams p = makeConv(8, 16, 32, 4, 3, 1, 1);
    const auto stream = tileFillStream(p, {1, 1}, Layout::HWCN);
    // One request per touched input row (or fewer if rows merge).
    EXPECT_LE(stream.size(), static_cast<size_t>(p.inH));
}

TEST(TileFillStream, ChwWastesBandwidthUnderStride)
{
    // At stride 2 the CHW gather fetches over the skipped pixels,
    // roughly doubling the moved bytes (Fig 7's motivation).
    const ConvParams p = makeConv(8, 16, 32, 4, 3, 2, 1);
    const Bytes hwcn =
        streamBytes(tileFillStream(p, {1, 1}, Layout::HWCN));
    const Bytes nchw =
        streamBytes(tileFillStream(p, {1, 1}, Layout::NCHW));
    EXPECT_GT(nchw, static_cast<Bytes>(1.5 * hwcn));
}

TEST(TileFillStream, HwcFasterThanChwOnDramModel)
{
    // The headline claim of Fig 7: HWC fills beat CHW fills.
    const ConvParams p = makeConv(8, 32, 56, 4, 3, 2, 1);
    DramModel model(DramConfig::hbm700());
    const Cycles hwcn =
        model.service(tileFillStream(p, {1, 1}, Layout::HWCN));
    const Cycles nchw =
        model.service(tileFillStream(p, {1, 1}, Layout::NCHW));
    EXPECT_LT(2 * hwcn, nchw);
}

TEST(TileFillStream, StrideShrinksStreamVolume)
{
    // Wide channels so strided HWCN runs exceed the transaction size.
    const ConvParams s1 = makeConv(1, 32, 33, 4, 3, 1, 1);
    const ConvParams s2 = makeConv(1, 32, 33, 4, 3, 2, 1);
    const Bytes b1 = streamBytes(tileFillStream(s1, {1, 1}, Layout::HWCN));
    const Bytes b2 = streamBytes(tileFillStream(s2, {1, 1}, Layout::HWCN));
    EXPECT_NEAR(static_cast<double>(b1) / static_cast<double>(b2), 4.0,
                0.6);
}

TEST(FullInputStream, CoversWholeInputOnce)
{
    ConvParams p = makeConv(2, 4, 16, 4, 3, 1, 1);
    p.dataType = DataType::Fp32;
    for (Layout layout : {Layout::NCHW, Layout::NHWC, Layout::HWCN}) {
        const auto stream = fullInputStream(p, layout);
        EXPECT_EQ(streamBytes(stream), p.inputBytes());
    }
}

TEST(StreamBytes, EmptyStreamIsZero)
{
    EXPECT_EQ(streamBytes({}), 0u);
}

} // namespace
} // namespace cfconv::dram
