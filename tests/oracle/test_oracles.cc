/** @file Tests for the hardware-measurement oracles and validation. */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "models/model_zoo.h"
#include "oracle/gpu_oracle.h"
#include "oracle/tpu_oracle.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::oracle {
namespace {

using tensor::makeConv;

TEST(TpuOracle, DeterministicAcrossCalls)
{
    TpuOracle oracle;
    EXPECT_EQ(oracle.gemmSeconds(1024, 1024, 1024),
              oracle.gemmSeconds(1024, 1024, 1024));
    const ConvParams p = makeConv(8, 64, 56, 64, 3, 1, 1);
    EXPECT_EQ(oracle.convSeconds(p), oracle.convSeconds(p));
}

TEST(TpuOracle, NoiseStaysWithinAmplitude)
{
    TpuOracleConfig cfg;
    TpuOracle noisy(cfg);
    const double bound = cfg.noiseAmplitude + 1e-4;
    cfg.noiseAmplitude = 0.0;
    TpuOracle clean(cfg);
    for (Index m : {256, 512, 1024, 2048, 4096}) {
        const double ratio = noisy.gemmSeconds(m, 1024, 1024) /
                             clean.gemmSeconds(m, 1024, 1024);
        EXPECT_GT(ratio, 1.0 - bound);
        EXPECT_LT(ratio, 1.0 + bound);
    }
}

TEST(TpuOracle, GemmScalesWithWork)
{
    TpuOracle oracle;
    EXPECT_GT(oracle.gemmSeconds(4096, 4096, 4096),
              3.0 * oracle.gemmSeconds(1024, 4096, 4096));
}

TEST(TpuOracle, ConvRespectsMultiTileStrategy)
{
    // Small-channel layers benefit from the TPU's multi-tile merging:
    // C_I = 8 with W_F = 3 should run ~3x faster than a naive
    // tile-by-tile execution would suggest.
    TpuOracle oracle;
    const ConvParams p8 = makeConv(8, 8, 128, 128, 3, 1, 1);
    const ConvParams p128 = makeConv(8, 128, 128, 128, 3, 1, 1);
    // p128 has 16x the FLOPs; with multi-tile the time gap must be far
    // below 16x (C_I = 8 wastes rows but merges 3 tiles).
    const double ratio =
        oracle.convSeconds(p128) / oracle.convSeconds(p8);
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 6.0);
}

TEST(TpuOracle, ValidationErrorAgainstTpuSimIsSmall)
{
    // The headline validation of Fig 13a: TPUSim vs "measured" GEMMs.
    TpuOracle oracle;
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    std::vector<double> ref, measured;
    for (Index dim : {256, 512, 1024, 2048, 4096}) {
        ref.push_back(oracle.gemmSeconds(dim, dim, dim));
        measured.push_back(sim.runGemm(dim, dim, dim).seconds);
    }
    EXPECT_LT(meanAbsPctError(ref, measured), 12.0);
}

TEST(TpuOracle, ConvValidationErrorIsSmall)
{
    // Fig 13b: CONV layers that do not trigger multi-tile (C_I >= 128).
    TpuOracle oracle;
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    std::vector<double> ref, measured;
    for (Index ci : {128, 256}) {
        for (Index hw : {14, 28, 56}) {
            const ConvParams p = makeConv(8, ci, hw, 128, 3, 1, 1);
            ref.push_back(oracle.convSeconds(p));
            measured.push_back(sim.runConv(p).seconds);
        }
    }
    EXPECT_LT(meanAbsPctError(ref, measured), 12.0);
}

TEST(GpuOracle, DeterministicAndPositive)
{
    GpuOracle oracle;
    const ConvParams p = makeConv(8, 64, 56, 64, 3, 1, 1);
    const double t = oracle.convSeconds(p);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(t, oracle.convSeconds(p));
}

TEST(GpuOracle, ExplicitSlowerThanImplicit)
{
    GpuOracle oracle;
    const ConvParams p = makeConv(64, 64, 56, 64, 3, 1, 1);
    EXPECT_GT(oracle.convExplicitSeconds(p), oracle.convSeconds(p));
    EXPECT_GT(oracle.transformSeconds(p), 0.0);
}

TEST(GpuOracle, TflopsBelowPeak)
{
    GpuOracle oracle;
    const ConvParams p = makeConv(64, 256, 28, 256, 3, 1, 1);
    EXPECT_LT(oracle.convTflops(p),
              gpusim::GpuConfig::v100().peakTflops());
    EXPECT_GT(oracle.convTflops(p), 10.0);
}

TEST(Oracles, ModelLevelValidationMae)
{
    // Fig 15 methodology smoke test: per-layer validation on AlexNet.
    TpuOracle oracle;
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    std::vector<double> ref, measured;
    for (const auto &layer : models::alexnet(8).layers) {
        ref.push_back(oracle.convSeconds(layer.params));
        measured.push_back(sim.runConv(layer.params).seconds);
    }
    EXPECT_LT(meanAbsPctError(ref, measured), 20.0);
}

} // namespace
} // namespace cfconv::oracle
