/** @file Property sweeps over the measurement oracles. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "oracle/gpu_oracle.h"
#include "oracle/tpu_oracle.h"

namespace cfconv::oracle {
namespace {

using tensor::makeConv;

class OracleGemmSweep : public ::testing::TestWithParam<Index>
{
};

TEST_P(OracleGemmSweep, TimesArePositiveAndScaleReasonably)
{
    const Index dim = GetParam();
    TpuOracle tpu;
    GpuOracle gpu;
    const double t = tpu.gemmSeconds(dim, dim, dim);
    const double g = gpu.gemmSeconds(dim, dim, dim);
    EXPECT_GT(t, 0.0);
    EXPECT_GT(g, 0.0);
    // Doubling M roughly doubles time for compute-bound shapes
    // (generous band because of quantization and noise).
    const double t2 = tpu.gemmSeconds(2 * dim, dim, dim);
    EXPECT_GT(t2, 1.4 * t);
    EXPECT_LT(t2, 3.0 * t);
}

INSTANTIATE_TEST_SUITE_P(Dims, OracleGemmSweep,
                         ::testing::Values(512, 1024, 2048, 4096));

TEST(TpuOracleSweeps, EffectiveTflopsBoundedByPeak)
{
    TpuOracle oracle;
    for (Index ci : {8L, 64L, 128L, 256L}) {
        const auto p = makeConv(8, ci, 56, 128, 3, 1, 1);
        const double tflops = oracle.convTflops(p);
        EXPECT_GT(tflops, 0.1);
        // Peak = 22.9 TFLOPS; allow the noise band.
        EXPECT_LT(tflops, 24.0) << "C_I " << ci;
    }
}

TEST(TpuOracleSweeps, StrideInsensitiveLikeTheHardware)
{
    TpuOracle oracle;
    const double t1 =
        oracle.convTflops(makeConv(8, 128, 56, 128, 3, 1, 1));
    const double t2 =
        oracle.convTflops(makeConv(8, 128, 56, 128, 3, 2, 1));
    EXPECT_GT(t2, 0.7 * t1);
}

TEST(TpuOracleSweeps, NoiseAmplitudeZeroIsExactlyAnalytical)
{
    TpuOracleConfig cfg;
    cfg.noiseAmplitude = 0.0;
    TpuOracle clean(cfg);
    // With zero noise, two differently-seeded oracles agree exactly.
    cfg.noiseSeed = 999;
    TpuOracle clean2(cfg);
    EXPECT_DOUBLE_EQ(clean.gemmSeconds(1024, 512, 256),
                     clean2.gemmSeconds(1024, 512, 256));
}

TEST(TpuOracleSweeps, DistinctLayersGetDistinctNoise)
{
    TpuOracle oracle;
    // Two layers with identical analytical time but different keys
    // should differ by the noise.
    TpuOracleConfig cfg;
    cfg.noiseAmplitude = 0.0;
    TpuOracle clean(cfg);
    const auto a = makeConv(8, 128, 56, 128, 3, 1, 1);
    const auto b = makeConv(8, 128, 56, 128, 3, 1, 1);
    EXPECT_EQ(oracle.convSeconds(a), oracle.convSeconds(b));
    // But stride 1 vs stride 1 with a different batch key diverges
    // from the clean model differently.
    const auto c = makeConv(4, 128, 56, 128, 3, 1, 1);
    const double ratio_a =
        oracle.convSeconds(a) / clean.convSeconds(a);
    const double ratio_c =
        oracle.convSeconds(c) / clean.convSeconds(c);
    EXPECT_NE(ratio_a, ratio_c);
}

TEST(GpuOracleSweeps, StridedLayersSlowDown)
{
    GpuOracle oracle;
    const double t1 =
        oracle.convTflops(makeConv(64, 128, 28, 128, 3, 1, 1));
    const double t2 =
        oracle.convTflops(makeConv(64, 128, 28, 128, 3, 2, 1));
    EXPECT_LT(t2, 0.9 * t1); // the cuDNN-like stride penalty
}

TEST(GpuOracleSweeps, TransformGrowsWithKernelArea)
{
    GpuOracle oracle;
    const double k3 =
        oracle.transformSeconds(makeConv(8, 64, 56, 64, 3, 1, 1));
    const double k5 =
        oracle.transformSeconds(makeConv(8, 64, 56, 64, 5, 1, 2));
    EXPECT_GT(k5, 1.8 * k3);
}

TEST(GpuOracleSweeps, RejectsBadGemmDims)
{
    GpuOracle oracle;
    EXPECT_THROW(oracle.gemmSeconds(0, 1, 1), FatalError);
}

} // namespace
} // namespace cfconv::oracle
