/** @file Tests for the non-GEMM network layers. */

#include <gtest/gtest.h>

#include "tensor/nn_ops.h"

namespace cfconv::tensor {
namespace {

TEST(MaxPool, TwoByTwoKnownResult)
{
    Tensor t(1, 1, 4, 4);
    for (Index h = 0; h < 4; ++h)
        for (Index w = 0; w < 4; ++w)
            t.at(0, 0, h, w) = static_cast<float>(h * 4 + w);
    const Tensor out = maxPool2d(t, {});
    ASSERT_EQ(out.h(), 2);
    ASSERT_EQ(out.w(), 2);
    EXPECT_EQ(out.at(0, 0, 0, 0), 5.0f);
    EXPECT_EQ(out.at(0, 0, 0, 1), 7.0f);
    EXPECT_EQ(out.at(0, 0, 1, 0), 13.0f);
    EXPECT_EQ(out.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool, PaddingNeverWins)
{
    Tensor t(1, 1, 2, 2);
    t.fill(-5.0f);
    PoolParams p;
    p.kernelH = p.kernelW = 3;
    p.strideH = p.strideW = 2;
    p.padH = p.padW = 1;
    const Tensor out = maxPool2d(t, p);
    // All windows see only negative values; padding must not inject 0.
    EXPECT_EQ(out.at(0, 0, 0, 0), -5.0f);
}

TEST(MaxPool, OverlappingWindows)
{
    // AlexNet-style 3x3/s2 pooling.
    Tensor t(1, 1, 5, 5);
    t.fillRamp();
    PoolParams p;
    p.kernelH = p.kernelW = 3;
    p.strideH = p.strideW = 2;
    const Tensor out = maxPool2d(t, p);
    EXPECT_EQ(out.h(), 2);
    EXPECT_EQ(out.at(0, 0, 1, 1), t.at(0, 0, 4, 4));
}

TEST(AvgPool, CountsOnlyInBoundsCells)
{
    Tensor t(1, 1, 2, 2);
    t.fill(4.0f);
    PoolParams p;
    p.kernelH = p.kernelW = 3;
    p.strideH = p.strideW = 2;
    p.padH = p.padW = 1;
    const Tensor out = avgPool2d(t, p);
    // Window at (0,0) covers 2x2 in-bounds cells of value 4 -> avg 4.
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 4.0f);
}

TEST(AvgPool, SimpleMean)
{
    Tensor t(1, 1, 2, 2);
    t.at(0, 0, 0, 0) = 1.0f;
    t.at(0, 0, 0, 1) = 2.0f;
    t.at(0, 0, 1, 0) = 3.0f;
    t.at(0, 0, 1, 1) = 4.0f;
    const Tensor out = avgPool2d(t, {});
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 2.5f);
}

TEST(Pool, ValidatesParameters)
{
    Tensor t(1, 1, 4, 4);
    PoolParams bad;
    bad.kernelH = 0;
    EXPECT_THROW(maxPool2d(t, bad), FatalError);
    PoolParams pad_too_big;
    pad_too_big.padH = 2; // >= kernel 2
    EXPECT_THROW(maxPool2d(t, pad_too_big), FatalError);
}

TEST(BatchNorm, NormalizesToZeroMeanUnitVar)
{
    Tensor t(1, 2, 1, 2);
    t.at(0, 0, 0, 0) = 2.0f;
    t.at(0, 0, 0, 1) = 6.0f;
    t.at(0, 1, 0, 0) = -1.0f;
    t.at(0, 1, 0, 1) = 1.0f;
    BatchNormParams p;
    p.mean = {4.0f, 0.0f};
    p.variance = {4.0f, 1.0f};
    p.epsilon = 0.0f;
    const Tensor out = batchNorm(t, p);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), -1.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 1.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), -1.0f);
}

TEST(BatchNorm, AffineScaleAndShift)
{
    Tensor t(1, 1, 1, 1);
    t.at(0, 0, 0, 0) = 3.0f;
    BatchNormParams p;
    p.mean = {1.0f};
    p.variance = {4.0f};
    p.gamma = {2.0f};
    p.beta = {10.0f};
    p.epsilon = 0.0f;
    // (3-1)/2 * 2 + 10 = 12.
    EXPECT_FLOAT_EQ(batchNorm(t, p).at(0, 0, 0, 0), 12.0f);
}

TEST(BatchNorm, RejectsSizeMismatch)
{
    Tensor t(1, 3, 2, 2);
    BatchNormParams p;
    p.mean = {0.0f};
    p.variance = {1.0f};
    EXPECT_THROW(batchNorm(t, p), FatalError);
}

TEST(Relu, ClampsNegatives)
{
    Tensor t(1, 1, 1, 3);
    t.at(0, 0, 0, 0) = -2.0f;
    t.at(0, 0, 0, 1) = 0.0f;
    t.at(0, 0, 0, 2) = 3.0f;
    const Tensor out = relu(t);
    EXPECT_EQ(out.at(0, 0, 0, 0), 0.0f);
    EXPECT_EQ(out.at(0, 0, 0, 1), 0.0f);
    EXPECT_EQ(out.at(0, 0, 0, 2), 3.0f);
}

TEST(Add, ElementwiseSumAndShapeCheck)
{
    Tensor a(1, 2, 2, 2), b(1, 2, 2, 2);
    a.fillRamp();
    b.fill(1.0f);
    const Tensor out = add(a, b);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1, 1),
                    a.at(0, 1, 1, 1) + 1.0f);
    Tensor wrong(1, 2, 2, 3);
    EXPECT_THROW(add(a, wrong), FatalError);
}

} // namespace
} // namespace cfconv::tensor
