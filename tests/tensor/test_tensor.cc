/** @file Unit tests for the Tensor/Matrix containers and layouts. */

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace cfconv::tensor {
namespace {

TEST(Tensor, OffsetsAreLayoutSpecific)
{
    Tensor nchw(2, 3, 4, 5, Layout::NCHW);
    EXPECT_EQ(nchw.offsetOf(0, 0, 0, 1), 1);
    EXPECT_EQ(nchw.offsetOf(0, 0, 1, 0), 5);
    EXPECT_EQ(nchw.offsetOf(0, 1, 0, 0), 20);
    EXPECT_EQ(nchw.offsetOf(1, 0, 0, 0), 60);

    Tensor nhwc(2, 3, 4, 5, Layout::NHWC);
    EXPECT_EQ(nhwc.offsetOf(0, 1, 0, 0), 1);
    EXPECT_EQ(nhwc.offsetOf(0, 0, 0, 1), 3);
    EXPECT_EQ(nhwc.offsetOf(0, 0, 1, 0), 15);

    Tensor hwcn(2, 3, 4, 5, Layout::HWCN);
    EXPECT_EQ(hwcn.offsetOf(1, 0, 0, 0), 1);
    EXPECT_EQ(hwcn.offsetOf(0, 1, 0, 0), 2);
    EXPECT_EQ(hwcn.offsetOf(0, 0, 0, 1), 6);

    Tensor chwn(2, 3, 4, 5, Layout::CHWN);
    EXPECT_EQ(chwn.offsetOf(1, 0, 0, 0), 1);
    EXPECT_EQ(chwn.offsetOf(0, 0, 0, 1), 2);
    EXPECT_EQ(chwn.offsetOf(0, 1, 0, 0), 40);
}

TEST(Tensor, LayoutConversionPreservesContent)
{
    Tensor t(2, 3, 4, 5, Layout::NCHW);
    t.fillRamp();
    for (Layout layout : {Layout::NHWC, Layout::HWCN, Layout::CHWN}) {
        const Tensor converted = t.toLayout(layout);
        EXPECT_EQ(converted.maxAbsDiff(t), 0.0f)
            << "layout " << layoutName(layout);
        // And back again.
        const Tensor round = converted.toLayout(Layout::NCHW);
        EXPECT_EQ(round.maxAbsDiff(t), 0.0f);
    }
}

TEST(Tensor, PaddedReadsReturnZeroOutside)
{
    Tensor t(1, 1, 2, 2);
    t.fill(7.0f);
    EXPECT_EQ(t.atPadded(0, 0, -1, 0), 0.0f);
    EXPECT_EQ(t.atPadded(0, 0, 0, -1), 0.0f);
    EXPECT_EQ(t.atPadded(0, 0, 2, 0), 0.0f);
    EXPECT_EQ(t.atPadded(0, 0, 0, 2), 0.0f);
    EXPECT_EQ(t.atPadded(0, 0, 1, 1), 7.0f);
}

TEST(Tensor, FillRandomIsDeterministic)
{
    Tensor a(1, 2, 3, 3);
    Tensor b(1, 2, 3, 3);
    a.fillRandom(42);
    b.fillRandom(42);
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f);
    b.fillRandom(43);
    EXPECT_GT(a.maxAbsDiff(b), 0.0f);
}

TEST(Tensor, RampIsLayoutIndependent)
{
    Tensor a(2, 2, 3, 3, Layout::NCHW);
    Tensor b(2, 2, 3, 3, Layout::HWCN);
    a.fillRamp();
    b.fillRamp();
    EXPECT_EQ(a.maxAbsDiff(b), 0.0f);
}

TEST(Tensor, RejectsNonPositiveDims)
{
    EXPECT_THROW(Tensor(0, 1, 1, 1), FatalError);
    EXPECT_THROW(Tensor(1, 1, 0, 1), FatalError);
}

TEST(Matrix, BasicAccessAndDiff)
{
    Matrix m(2, 3);
    m.at(1, 2) = 5.0f;
    EXPECT_EQ(m.at(1, 2), 5.0f);
    Matrix other(2, 3);
    EXPECT_EQ(m.maxAbsDiff(other), 5.0f);
}

TEST(Matrix, DiffRejectsShapeMismatch)
{
    Matrix a(2, 3), b(3, 2);
    EXPECT_THROW(a.maxAbsDiff(b), FatalError);
}

} // namespace
} // namespace cfconv::tensor
