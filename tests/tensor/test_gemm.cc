/** @file Unit tests for reference and blocked GEMM. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/gemm.h"
#include "tensor/microkernel.h"

namespace cfconv::tensor {
namespace {

Matrix
naiveGemm(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < b.cols(); ++j) {
            float acc = 0.0f;
            for (Index p = 0; p < a.cols(); ++p)
                acc += a.at(i, p) * b.at(p, j);
            c.at(i, j) = acc;
        }
    return c;
}

TEST(Gemm, SmallKnownResult)
{
    Matrix a(2, 2), b(2, 2), c(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;
    gemm(a, b, c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Gemm, MatchesNaiveOnRandom)
{
    Matrix a(17, 9), b(9, 13), c(17, 13);
    a.fillRandom(1);
    b.fillRandom(2);
    gemm(a, b, c);
    EXPECT_LT(c.maxAbsDiff(naiveGemm(a, b)), 1e-4f);
}

TEST(Gemm, AccumulateAddsOntoExisting)
{
    Matrix a(3, 4), b(4, 2), c(3, 2);
    a.fillRandom(3);
    b.fillRandom(4);
    c.fill(1.0f);
    gemmAccumulate(a, b, c);
    Matrix expected = naiveGemm(a, b);
    for (Index i = 0; i < 3; ++i)
        for (Index j = 0; j < 2; ++j)
            EXPECT_NEAR(c.at(i, j), expected.at(i, j) + 1.0f, 1e-5f);
}

TEST(Gemm, RejectsShapeMismatch)
{
    Matrix a(2, 3), b(4, 2), c(2, 2);
    EXPECT_THROW(gemm(a, b, c), FatalError);
    Matrix b2(3, 2), c_bad(3, 2);
    EXPECT_THROW(gemm(a, b2, c_bad), FatalError);
}

struct TileCase
{
    Index tm, tn, tk;
};

class BlockedGemm : public ::testing::TestWithParam<TileCase>
{
};

TEST_P(BlockedGemm, TilingIsValuePreserving)
{
    const TileCase tc = GetParam();
    Matrix a(23, 17), b(17, 11), c(23, 11), ref(23, 11);
    a.fillRandom(5);
    b.fillRandom(6);
    gemm(a, b, ref);
    gemmBlocked(a, b, c, tc.tm, tc.tn, tc.tk);
    EXPECT_LT(c.maxAbsDiff(ref), 1e-4f)
        << "tiles " << tc.tm << "x" << tc.tn << "x" << tc.tk;
}

INSTANTIATE_TEST_SUITE_P(
    TileSweep, BlockedGemm,
    ::testing::Values(TileCase{1, 1, 1}, TileCase{4, 4, 4},
                      TileCase{8, 3, 5}, TileCase{23, 11, 17},
                      TileCase{32, 32, 32}, TileCase{7, 2, 16}));

TEST(BlockedGemm, RejectsBadTileSizes)
{
    Matrix a(2, 2), b(2, 2), c(2, 2);
    EXPECT_THROW(gemmBlocked(a, b, c, 0, 1, 1), FatalError);
}

/** Operands for the 0 * NaN/Inf regression: A carries exact zeros
 *  against B's non-finite entries, so any zero-skip shortcut changes
 *  the IEEE-mandated NaN outputs. */
void
makeNonFiniteCase(Matrix &a, Matrix &b)
{
    a.at(0, 0) = 0.0f;
    a.at(0, 1) = 1.0f;
    a.at(0, 2) = 0.0f;
    // a row 1 stays all zeros
    b.fill(2.0f);
    b.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
    b.at(2, 1) = std::numeric_limits<float>::infinity();
}

TEST(Gemm, ZeroTimesNonFinitePropagatesByDefault)
{
    // Regression for the historical zero-skip hazard: skipping
    // av == 0.0f dropped 0 * NaN/Inf contributions, so the reference
    // GEMM silently diverged from IEEE semantics. Default options must
    // propagate, on every backend.
    for (const KernelBackend backend :
         {KernelBackend::Scalar, KernelBackend::Generic,
          KernelBackend::Avx2}) {
        if (!kernelBackendAvailable(backend))
            continue;
        setKernelBackend(backend);
        Matrix a(2, 3), b(3, 2), c(2, 2);
        makeNonFiniteCase(a, b);
        gemm(a, b, c);
        // Every output column mixes a zero A operand with a NaN or Inf
        // B entry, so IEEE arithmetic yields NaN everywhere.
        EXPECT_TRUE(std::isnan(c.at(0, 0)))
            << "0 * NaN dropped on " << kernelBackendName(backend);
        EXPECT_TRUE(std::isnan(c.at(0, 1)))
            << "0 * Inf dropped on " << kernelBackendName(backend);
        EXPECT_TRUE(std::isnan(c.at(1, 0)))
            << "0 * NaN dropped on " << kernelBackendName(backend);
        EXPECT_TRUE(std::isnan(c.at(1, 1)))
            << "0 * Inf dropped on " << kernelBackendName(backend);
    }
    resetKernelBackend();
}

TEST(Gemm, AllowZeroSkipRestoresSparseShortcutOnScalar)
{
    setKernelBackend(KernelBackend::Scalar);
    GemmOptions skip;
    skip.allowZeroSkip = true;
    Matrix a(2, 3), b(3, 2), c(2, 2);
    makeNonFiniteCase(a, b);
    gemm(a, b, c, skip);
    // With the skip opted in, the zero A terms never touch B's
    // non-finite entries: row 0 sees only a(0,1) * b(1,*), row 1
    // nothing at all.
    EXPECT_FLOAT_EQ(c.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 0.0f);
    resetKernelBackend();
}

} // namespace
} // namespace cfconv::tensor
