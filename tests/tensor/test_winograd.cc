/** @file Tests for Winograd F(2x2, 3x3) convolution. */

#include <gtest/gtest.h>

#include "tensor/conv_ref.h"
#include "tensor/winograd.h"

namespace cfconv::tensor {
namespace {

TEST(Winograd, ApplicabilityDomain)
{
    EXPECT_TRUE(winogradApplicable(makeConv(1, 4, 8, 4, 3, 1, 1)));
    EXPECT_FALSE(winogradApplicable(makeConv(1, 4, 8, 4, 3, 2, 1)));
    EXPECT_FALSE(winogradApplicable(makeConv(1, 4, 8, 4, 5, 1, 2)));
    EXPECT_FALSE(
        winogradApplicable(makeConv(1, 4, 9, 4, 3, 1, 0, 2)));
}

struct WinoCase
{
    Index batch, ci, hw, co, pad;
};

class WinogradSweep : public ::testing::TestWithParam<WinoCase>
{
};

TEST_P(WinogradSweep, MatchesDirectConvolution)
{
    const WinoCase c = GetParam();
    const ConvParams p = makeConv(c.batch, c.ci, c.hw, c.co, 3, 1,
                                  c.pad);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(401);
    filter.fillRandom(403);

    const Tensor wino = convWinograd(p, input, filter);
    const Tensor ref = convDirect(p, input, filter);
    EXPECT_LT(wino.maxAbsDiff(ref), 1e-3f) << p.toString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WinogradSweep,
    ::testing::Values(WinoCase{1, 1, 6, 1, 0},  // even outputs
                      WinoCase{1, 1, 5, 1, 0},  // odd outputs (edge tile)
                      WinoCase{2, 3, 8, 4, 1},  // padded
                      WinoCase{1, 4, 7, 2, 1},  // odd + padded
                      WinoCase{2, 2, 12, 2, 0},
                      WinoCase{1, 8, 9, 8, 1}));

TEST(Winograd, RejectsOutsideDomain)
{
    const ConvParams p = makeConv(1, 2, 8, 2, 3, 2, 1);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    EXPECT_THROW(convWinograd(p, input, filter), FatalError);
    EXPECT_THROW(winogradCost(p), FatalError);
}

TEST(Winograd, CostReductionApproaches2Point25)
{
    // 16 multiplies produce 4 outputs vs 36 for direct: 2.25x, exact
    // when the output dims are even.
    const ConvParams p = makeConv(1, 16, 34, 16, 3, 1, 1);
    const WinogradCost cost = winogradCost(p);
    EXPECT_NEAR(cost.reduction(), 2.25, 0.01);
}

TEST(Winograd, EdgeTilesReduceTheSavings)
{
    // Odd output dims waste part of the last tile row/column.
    const ConvParams p = makeConv(1, 4, 7, 4, 3, 1, 1);
    const WinogradCost cost = winogradCost(p);
    EXPECT_LT(cost.reduction(), 2.25);
    EXPECT_GT(cost.reduction(), 1.5);
}

TEST(Winograd, IdentityFilterPassesThrough)
{
    // A center-tap-only filter copies the input (away from edges).
    const ConvParams p = makeConv(1, 1, 6, 1, 3, 1, 1);
    Tensor input = makeInput(p);
    input.fillRamp();
    Tensor filter = makeFilter(p);
    filter.fill(0.0f);
    filter.at(0, 0, 1, 1) = 1.0f;
    const Tensor out = convWinograd(p, input, filter);
    EXPECT_LT(out.maxAbsDiff(input), 1e-4f);
}

} // namespace
} // namespace cfconv::tensor
