/** @file Tests for space-to-depth / depth-to-space transforms. */

#include <gtest/gtest.h>

#include "tensor/space_to_depth.h"

namespace cfconv::tensor {
namespace {

TEST(SpaceToDepth, ShapesAndChannelOrder)
{
    Tensor t(1, 2, 4, 4);
    t.fillRamp();
    const Tensor out = spaceToDepth(t, 2);
    EXPECT_EQ(out.c(), 8);
    EXPECT_EQ(out.h(), 2);
    EXPECT_EQ(out.w(), 2);
    // Block offset (dy=1, dx=0) of channel 1 is channel
    // (1*2+0)*2 + 1 = 5.
    EXPECT_EQ(out.at(0, 5, 0, 0), t.at(0, 1, 1, 0));
    // Block offset (0, 0) keeps the original channels up front.
    EXPECT_EQ(out.at(0, 0, 1, 1), t.at(0, 0, 2, 2));
}

TEST(SpaceToDepth, RoundTripsWithDepthToSpace)
{
    Tensor t(2, 3, 6, 8);
    t.fillRandom(7);
    for (Index block : {1L, 2L}) {
        const Tensor round =
            depthToSpace(spaceToDepth(t, block), block);
        EXPECT_EQ(round.maxAbsDiff(t), 0.0f) << "block " << block;
    }
}

TEST(SpaceToDepth, BlockOneIsIdentity)
{
    Tensor t(1, 3, 4, 4);
    t.fillRandom(9);
    EXPECT_EQ(spaceToDepth(t, 1).maxAbsDiff(t), 0.0f);
}

TEST(SpaceToDepth, RejectsIndivisibleDims)
{
    Tensor t(1, 1, 5, 4);
    EXPECT_THROW(spaceToDepth(t, 2), FatalError);
    Tensor c(1, 3, 2, 2);
    EXPECT_THROW(depthToSpace(c, 2), FatalError);
}

TEST(SpaceToDepthParams, RewritesFirstLayerGeometry)
{
    // ResNet conv1: 3ch 224x224 k7 s2 p3 -> with block 2:
    // 12ch 112x112 k4 s1 p2.
    const ConvParams conv1 = makeConv(8, 3, 224, 64, 7, 2, 3);
    const ConvParams rewritten = spaceToDepthParams(conv1, 2);
    EXPECT_EQ(rewritten.inChannels, 12);
    EXPECT_EQ(rewritten.inH, 112);
    EXPECT_EQ(rewritten.strideH, 1);
    EXPECT_EQ(rewritten.kernelH, 4);
    // The output grid survives (same number of output positions,
    // within kernel-edge rounding).
    EXPECT_NEAR(static_cast<double>(rewritten.outH()),
                static_cast<double>(conv1.outH()), 2.0);
}

TEST(SpaceToDepthParams, ImprovesSystolicRowOccupancy)
{
    // The whole point: 3 channels leave 125 idle rows; 12 channels
    // quadruple the occupancy per pass.
    const ConvParams conv1 = makeConv(8, 3, 224, 64, 7, 2, 3);
    const ConvParams rewritten = spaceToDepthParams(conv1, 2);
    EXPECT_EQ(rewritten.inChannels, 4 * conv1.inChannels);
    // FLOPs are preserved up to kernel rounding (k7 -> k4 over a
    // half-resolution grid covers 8x8 original taps vs 7x7).
    const double ratio = static_cast<double>(rewritten.flops()) /
                         static_cast<double>(conv1.flops());
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.5);
}

TEST(SpaceToDepthParams, RejectsUnsupportedGeometry)
{
    // Stride not divisible by block.
    EXPECT_THROW(
        spaceToDepthParams(makeConv(1, 3, 224, 64, 7, 1, 3), 2),
        FatalError);
    // Dilated kernels are not rewritten.
    EXPECT_THROW(
        spaceToDepthParams(makeConv(1, 3, 224, 64, 7, 2, 3, 2), 2),
        FatalError);
    // Degenerate block.
    EXPECT_THROW(
        spaceToDepthParams(makeConv(1, 3, 224, 64, 7, 2, 3), 0),
        FatalError);
}

} // namespace
} // namespace cfconv::tensor
