/**
 * @file
 * Golden-parity suite for the micro-kernel GEMM subsystem: every
 * backend (avx2/generic/scalar) against the naive reference across
 * awkward shapes, accumulate and overwrite modes, at 1 and N threads.
 *
 * Tolerance contract: within a backend, results are bit-exact at any
 * thread count and under any K-blocking. Across backends (and vs the
 * naive loop) FMA contraction and 8-wide accumulation reassociate the
 * k-sum, so parity holds to kUlpSlack * eps * k absolute (operands are
 * drawn from [-1, 1), so partial sums are bounded by k).
 */

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "tensor/gemm.h"
#include "tensor/microkernel.h"

namespace cfconv::tensor {
namespace {

/** ULP headroom multiplier of the cross-backend tolerance. */
constexpr float kUlpSlack = 16.0f;

float
parityTol(Index k)
{
    return kUlpSlack * FLT_EPSILON * static_cast<float>(k) + FLT_MIN;
}

/** Strictly sequential float reference; optionally C += A*B. */
Matrix
naiveGemm(const Matrix &a, const Matrix &b, const Matrix *base = nullptr)
{
    Matrix c(a.rows(), b.cols());
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < b.cols(); ++j) {
            float acc = base != nullptr ? base->at(i, j) : 0.0f;
            for (Index p = 0; p < a.cols(); ++p)
                acc += a.at(i, p) * b.at(p, j);
            c.at(i, j) = acc;
        }
    return c;
}

std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> v{KernelBackend::Scalar,
                                 KernelBackend::Generic};
    if (kernelBackendAvailable(KernelBackend::Avx2))
        v.push_back(KernelBackend::Avx2);
    return v;
}

/** Restores the env/CPUID backend and thread count on scope exit. */
struct DispatchGuard
{
    ~DispatchGuard()
    {
        resetKernelBackend();
        parallel::setThreads(0);
    }
};

void
expectParity(Index m, Index n, Index k, KernelBackend backend)
{
    Matrix a(m, k), b(k, n);
    a.fillRandom(static_cast<std::uint64_t>(m * 131 + n * 7 + k));
    b.fillRandom(static_cast<std::uint64_t>(m + n * 113 + k * 17));
    setKernelBackend(backend);

    Matrix c(m, n);
    gemm(a, b, c);
    const Matrix ref = naiveGemm(a, b);
    EXPECT_LE(c.maxAbsDiff(ref), parityTol(k))
        << "overwrite " << m << "x" << n << "x" << k << " backend "
        << kernelBackendName(backend);

    Matrix acc(m, n);
    acc.fillRandom(99);
    const Matrix ref_acc = naiveGemm(a, b, &acc);
    gemmAccumulate(a, b, acc);
    EXPECT_LE(acc.maxAbsDiff(ref_acc), parityTol(k) + FLT_EPSILON)
        << "accumulate " << m << "x" << n << "x" << k << " backend "
        << kernelBackendName(backend);
}

constexpr Index kAwkward[] = {1, 7, 8, 9, 63, 64, 65, 131};

TEST(MicrokernelParity, AwkwardAxisSweep)
{
    DispatchGuard guard;
    for (const KernelBackend backend : availableBackends())
        for (const Index v : kAwkward) {
            expectParity(v, 64, 64, backend);
            expectParity(64, v, 64, backend);
            expectParity(64, 64, v, backend);
        }
}

TEST(MicrokernelParity, AwkwardCrossSweep)
{
    DispatchGuard guard;
    const Index sets[2][3] = {{1, 9, 65}, {7, 8, 131}};
    for (const KernelBackend backend : availableBackends())
        for (const auto &set : sets)
            for (const Index m : set)
                for (const Index n : set)
                    for (const Index k : set)
                        expectParity(m, n, k, backend);
}

TEST(MicrokernelParallel, BitExactAcrossThreadCounts)
{
    DispatchGuard guard;
    for (const KernelBackend backend : availableBackends()) {
        setKernelBackend(backend);
        Matrix a(131, 65), b(65, 63);
        a.fillRandom(1);
        b.fillRandom(2);
        parallel::setThreads(1);
        Matrix serial(131, 63);
        gemm(a, b, serial);
        parallel::setThreads(4);
        Matrix par(131, 63);
        gemm(a, b, par);
        EXPECT_EQ(std::memcmp(serial.data(), par.data(),
                              sizeof(float) * 131 * 63),
                  0)
            << "backend " << kernelBackendName(backend);
        parallel::setThreads(0);
    }
}

TEST(MicrokernelParallel, AccumulateBitExactAcrossThreadCounts)
{
    DispatchGuard guard;
    for (const KernelBackend backend : availableBackends()) {
        setKernelBackend(backend);
        Matrix a(65, 131), b(131, 65);
        a.fillRandom(3);
        b.fillRandom(4);
        auto run = [&] {
            Matrix c(65, 65);
            c.fillRandom(5);
            gemmAccumulate(a, b, c);
            return c;
        };
        parallel::setThreads(1);
        const Matrix serial = run();
        parallel::setThreads(4);
        const Matrix par = run();
        EXPECT_EQ(std::memcmp(serial.data(), par.data(),
                              sizeof(float) * 65 * 65),
                  0)
            << "backend " << kernelBackendName(backend);
        parallel::setThreads(0);
    }
}

TEST(MicrokernelParity, KBlockingIsBitExactOnPackedBackends)
{
    DispatchGuard guard;
    for (const KernelBackend backend : availableBackends()) {
        setKernelBackend(backend);
        Matrix a(23, 131), b(131, 17);
        a.fillRandom(6);
        b.fillRandom(7);
        Matrix ref(23, 17);
        gemm(a, b, ref);
        for (const Index tile_k : {Index{1}, Index{5}, Index{64},
                                   Index{256}}) {
            Matrix c(23, 17);
            gemmBlocked(a, b, c, 8, 8, tile_k);
            if (backend == KernelBackend::Scalar) {
                // The scalar backend keeps the seed's three-level tile
                // walk, which reassociates the k-sum vs the flat loop.
                EXPECT_LE(c.maxAbsDiff(ref), parityTol(131))
                    << "tile_k " << tile_k;
            } else {
                // Packed backends: partial products round-trip through
                // C exactly, so any K-block depth is bit-identical.
                EXPECT_EQ(std::memcmp(c.data(), ref.data(),
                                      sizeof(float) * 23 * 17),
                          0)
                    << "backend " << kernelBackendName(backend)
                    << " tile_k " << tile_k;
            }
        }
    }
}

TEST(MicrokernelParity, ScalarBackendReproducesSeedLoop)
{
    DispatchGuard guard;
    setKernelBackend(KernelBackend::Scalar);
    Matrix a(37, 29), b(29, 31);
    a.fillRandom(8);
    b.fillRandom(9);
    Matrix c(37, 31);
    gemm(a, b, c);
    // The seed's exact loop: row-major, ascending (p, j), zero-skip.
    // On finite data the gated skip is value-neutral, so the scalar
    // backend must reproduce it bit-for-bit.
    Matrix seed(37, 31);
    for (Index i = 0; i < 37; ++i) {
        for (Index p = 0; p < 29; ++p) {
            const float av = a.at(i, p);
            if (av == 0.0f)
                continue;
            for (Index j = 0; j < 31; ++j)
                seed.at(i, j) += av * b.at(p, j);
        }
    }
    EXPECT_EQ(std::memcmp(c.data(), seed.data(),
                          sizeof(float) * 37 * 31),
              0);
}

TEST(MicrokernelDispatch, NamesAndAvailability)
{
    EXPECT_STREQ(kernelBackendName(KernelBackend::Scalar), "scalar");
    EXPECT_STREQ(kernelBackendName(KernelBackend::Generic), "generic");
    EXPECT_STREQ(kernelBackendName(KernelBackend::Avx2), "avx2");
    EXPECT_TRUE(kernelBackendAvailable(KernelBackend::Scalar));
    EXPECT_TRUE(kernelBackendAvailable(KernelBackend::Generic));
    EXPECT_NE(activeKernelBackendName(), nullptr);
}

TEST(MicrokernelDispatch, SetAndResetRoundTrip)
{
    DispatchGuard guard;
    setKernelBackend(KernelBackend::Generic);
    EXPECT_EQ(activeKernelBackend(), KernelBackend::Generic);
    setKernelBackend(KernelBackend::Scalar);
    EXPECT_EQ(activeKernelBackend(), KernelBackend::Scalar);
    resetKernelBackend();
    EXPECT_TRUE(kernelBackendAvailable(activeKernelBackend()));
}

TEST(MicrokernelHelpers, DotAddAxpyParityPerBackend)
{
    DispatchGuard guard;
    constexpr Index kLen = 131;
    std::vector<float> x(kLen), y(kLen);
    for (Index i = 0; i < kLen; ++i) {
        x[static_cast<size_t>(i)] =
            0.25f * static_cast<float>((i * 7) % 13) - 1.0f;
        y[static_cast<size_t>(i)] =
            0.125f * static_cast<float>((i * 5) % 17) - 1.0f;
    }
    double exact = 0.0;
    for (Index i = 0; i < kLen; ++i)
        exact += static_cast<double>(x[static_cast<size_t>(i)]) *
                 static_cast<double>(y[static_cast<size_t>(i)]);
    for (const KernelBackend backend : availableBackends()) {
        setKernelBackend(backend);
        EXPECT_NEAR(dotProduct(x.data(), y.data(), kLen), exact,
                    parityTol(kLen) * 8)
            << kernelBackendName(backend);

        std::vector<float> dst(kLen, 1.0f);
        vectorAddInto(dst.data(), x.data(), kLen);
        for (Index i = 0; i < kLen; ++i)
            EXPECT_EQ(dst[static_cast<size_t>(i)],
                      1.0f + x[static_cast<size_t>(i)]);

        std::vector<float> axp(kLen, 0.0f);
        vectorAxpyInto(axp.data(), x.data(), 2.0f, kLen);
        for (Index i = 0; i < kLen; ++i)
            EXPECT_NEAR(axp[static_cast<size_t>(i)],
                        2.0f * x[static_cast<size_t>(i)], 1e-6f);
    }
}

} // namespace
} // namespace cfconv::tensor
