/** @file Tests for bf16/fp16 storage emulation. */

#include <gtest/gtest.h>

#include <cmath>

#include "im2col/implicit_conv.h"
#include "tensor/conv_ref.h"
#include "tensor/quantize.h"

namespace cfconv::tensor {
namespace {

TEST(Bf16, ExactValuesPassThrough)
{
    // Values with <= 8 mantissa bits are exactly representable.
    for (float v : {0.0f, 1.0f, -2.5f, 0.15625f, 1024.0f})
        EXPECT_EQ(toBf16(v), v);
}

TEST(Bf16, RoundsToNearestEven)
{
    // 1 + 2^-8 is exactly halfway between bf16 neighbours 1.0 and
    // 1 + 2^-7; ties go to even (1.0).
    const float halfway = 1.0f + std::ldexp(1.0f, -8);
    EXPECT_EQ(toBf16(halfway), 1.0f);
    // Slightly above the halfway point rounds up.
    EXPECT_EQ(toBf16(1.0f + std::ldexp(1.5f, -8)),
              1.0f + std::ldexp(1.0f, -7));
}

TEST(Bf16, RelativeErrorBounded)
{
    Tensor t(1, 4, 8, 8);
    t.fillRandom(7);
    // bf16 has 7 explicit mantissa bits: relative error <= 2^-8.
    EXPECT_LE(quantizationError(t, DataType::Bf16),
              std::ldexp(1.0, -8) + 1e-9);
}

TEST(Fp16, ExactValuesPassThrough)
{
    for (float v : {0.0f, 1.0f, -0.5f, 2048.0f, 0.0009765625f})
        EXPECT_EQ(toFp16(v), v);
}

TEST(Fp16, RelativeErrorBounded)
{
    Tensor t(1, 4, 8, 8);
    t.fillRandom(11);
    // fp16 has 10 mantissa bits: relative error <= 2^-11.
    EXPECT_LE(quantizationError(t, DataType::Fp16),
              std::ldexp(1.0, -11) + 1e-9);
}

TEST(Fp16, OverflowSaturatesToInfinity)
{
    EXPECT_TRUE(std::isinf(toFp16(70000.0f)));
    EXPECT_TRUE(std::isinf(toFp16(-70000.0f)));
    EXPECT_LT(toFp16(-70000.0f), 0.0f);
}

TEST(Fp16, SubnormalsSurvive)
{
    // 2^-24 is the smallest positive fp16 subnormal.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(toFp16(tiny), tiny);
    // Below half of that underflows to zero.
    EXPECT_EQ(toFp16(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Fp16, MoreAccurateThanBf16)
{
    Tensor t(2, 3, 9, 9);
    t.fillRandom(13);
    EXPECT_LT(quantizationError(t, DataType::Fp16),
              quantizationError(t, DataType::Bf16));
}

TEST(Quantize, Fp32IsIdentityAndInt8Rejected)
{
    Tensor t(1, 2, 3, 3);
    t.fillRandom(17);
    EXPECT_EQ(quantize(t, DataType::Fp32).maxAbsDiff(t), 0.0f);
    EXPECT_THROW(quantize(t, DataType::Int8), FatalError);
}

TEST(Quantize, ImplicitConvInBf16StaysClose)
{
    // Run the implicit engine on bf16-rounded operands: the result
    // should track the fp32 result within the format's error budget.
    const ConvParams p = makeConv(2, 8, 10, 8, 3, 1, 1);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(19);
    filter.fillRandom(23);

    const Tensor fp32 = convDirect(p, input, filter);
    const Tensor bf16 = im2col::convImplicit(
        p, quantize(input, DataType::Bf16),
        quantize(filter, DataType::Bf16));

    // K = 72 accumulation steps; a loose but meaningful bound.
    float max_mag = 0.0f;
    for (Index i = 0; i < fp32.size(); ++i)
        max_mag = std::max(max_mag, std::abs(fp32.data()[i]));
    EXPECT_LT(bf16.maxAbsDiff(fp32), 0.05f * max_mag);
    EXPECT_GT(bf16.maxAbsDiff(fp32), 0.0f); // rounding really occurred
}

} // namespace
} // namespace cfconv::tensor
