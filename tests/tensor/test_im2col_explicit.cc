/** @file Unit and property tests for explicit im2col lowering. */

#include <gtest/gtest.h>

#include "tensor/conv_ref.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::tensor {
namespace {

TEST(RowCoord, DecomposesRowMajorOutput)
{
    const ConvParams p = makeConv(2, 1, 5, 1, 3); // H_O = W_O = 3
    const RowCoord rc = rowCoord(p, 9 + 3 * 1 + 2);
    EXPECT_EQ(rc.n, 1);
    EXPECT_EQ(rc.oh, 1);
    EXPECT_EQ(rc.ow, 2);
}

TEST(ColCoord, ChannelLastOrder)
{
    // k = (ci * H_F + r) * W_F + s for channel-last.
    const ConvParams p = makeConv(1, 4, 5, 1, 3);
    const ColCoord cc = colCoord(p, ColumnOrder::ChannelLast, 2 * 9 + 5);
    EXPECT_EQ(cc.ci, 2);
    EXPECT_EQ(cc.r, 1);
    EXPECT_EQ(cc.s, 2);
}

TEST(ColCoord, ChannelFirstOrder)
{
    // k = (r * W_F + s) * C_I + ci for channel-first.
    const ConvParams p = makeConv(1, 4, 5, 1, 3);
    const ColCoord cc = colCoord(p, ColumnOrder::ChannelFirst, 5 * 4 + 2);
    EXPECT_EQ(cc.ci, 2);
    EXPECT_EQ(cc.r, 1);
    EXPECT_EQ(cc.s, 2);
}

TEST(ColCoord, IndexRoundTripsBothOrders)
{
    const ConvParams p = makeConv(1, 3, 6, 2, 3, 1, 1);
    for (ColumnOrder order :
         {ColumnOrder::ChannelLast, ColumnOrder::ChannelFirst}) {
        for (Index k = 0; k < p.gemmK(); ++k) {
            const ColCoord cc = colCoord(p, order, k);
            EXPECT_EQ(colIndex(p, order, cc.r, cc.s, cc.ci), k);
        }
    }
}

TEST(Im2colLower, MatchesFig1Example)
{
    // 1 channel, 4x4 input, 3x3 kernel, no padding: the lowered matrix
    // rows are the flattened receptive fields.
    const ConvParams p = makeConv(1, 1, 4, 1, 3);
    Tensor input = makeInput(p);
    for (Index h = 0; h < 4; ++h)
        for (Index w = 0; w < 4; ++w)
            input.at(0, 0, h, w) = static_cast<float>(h * 4 + w);

    const Matrix lowered =
        im2colLower(p, input, ColumnOrder::ChannelLast);
    ASSERT_EQ(lowered.rows(), 4);
    ASSERT_EQ(lowered.cols(), 9);
    // Row 0: window anchored at (0, 0).
    const float expected_row0[9] = {0, 1, 2, 4, 5, 6, 8, 9, 10};
    for (Index k = 0; k < 9; ++k)
        EXPECT_EQ(lowered.at(0, k), expected_row0[k]);
    // Row 3: window anchored at (1, 1).
    const float expected_row3[9] = {5, 6, 7, 9, 10, 11, 13, 14, 15};
    for (Index k = 0; k < 9; ++k)
        EXPECT_EQ(lowered.at(3, k), expected_row3[k]);
}

TEST(Im2colLower, ColumnOrdersArePermutationsOfEachOther)
{
    const ConvParams p = makeConv(2, 3, 6, 4, 3, 2, 1);
    Tensor input = makeInput(p);
    input.fillRandom(7);
    const Matrix last = im2colLower(p, input, ColumnOrder::ChannelLast);
    const Matrix first =
        im2colLower(p, input, ColumnOrder::ChannelFirst);
    for (Index k = 0; k < p.gemmK(); ++k) {
        const ColCoord cc = colCoord(p, ColumnOrder::ChannelLast, k);
        const Index kf =
            colIndex(p, ColumnOrder::ChannelFirst, cc.r, cc.s, cc.ci);
        for (Index m = 0; m < p.gemmM(); ++m)
            EXPECT_EQ(last.at(m, k), first.at(m, kf));
    }
}

TEST(Im2colLower, PaddingRegionsAreZero)
{
    const ConvParams p = makeConv(1, 1, 3, 1, 3, 1, 1);
    Tensor input = makeInput(p);
    input.fill(1.0f);
    const Matrix lowered =
        im2colLower(p, input, ColumnOrder::ChannelLast);
    // Corner output (0,0): the top-left 2x2 of its window is padding.
    EXPECT_EQ(lowered.at(0, 0), 0.0f); // (r=0, s=0)
    EXPECT_EQ(lowered.at(0, 4), 1.0f); // (r=1, s=1) = center
}

struct ConvCase
{
    Index batch, ci, hw, co, k, s, p, d;
};

class ExplicitConv : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ExplicitConv, EqualsDirectConvBothOrders)
{
    const ConvCase c = GetParam();
    const ConvParams p =
        makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p, c.d);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(11);
    filter.fillRandom(13);

    const Tensor ref = convDirect(p, input, filter);
    for (ColumnOrder order :
         {ColumnOrder::ChannelLast, ColumnOrder::ChannelFirst}) {
        const Tensor out = convExplicitIm2col(p, input, filter, order);
        EXPECT_LT(out.maxAbsDiff(ref), 1e-3f)
            << p.toString() << " order " << columnOrderName(order);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, ExplicitConv,
    ::testing::Values(ConvCase{1, 1, 4, 1, 3, 1, 0, 1},
                      ConvCase{1, 3, 5, 2, 3, 1, 1, 1},
                      ConvCase{2, 4, 6, 4, 3, 2, 1, 1},
                      ConvCase{1, 2, 8, 3, 5, 1, 2, 1},
                      ConvCase{2, 3, 9, 2, 3, 1, 0, 2},
                      ConvCase{1, 4, 7, 4, 1, 1, 0, 1},
                      ConvCase{3, 2, 6, 2, 2, 2, 0, 1},
                      ConvCase{1, 5, 11, 3, 3, 4, 1, 1},
                      ConvCase{2, 2, 10, 2, 3, 2, 2, 2}));

TEST(FoldOutput, InverseOfRowDecomposition)
{
    const ConvParams p = makeConv(2, 1, 5, 3, 3);
    Matrix gemm_out(p.gemmM(), p.gemmN());
    gemm_out.fillRandom(17);
    const Tensor folded = foldOutput(p, gemm_out);
    for (Index m = 0; m < p.gemmM(); ++m) {
        const RowCoord rc = rowCoord(p, m);
        for (Index co = 0; co < p.gemmN(); ++co)
            EXPECT_EQ(folded.at(rc.n, co, rc.oh, rc.ow),
                      gemm_out.at(m, co));
    }
}

TEST(Col2Im, AccumulatesReceptiveFieldMultiplicity)
{
    // With an all-ones lowered matrix, col2im yields each input
    // element's receptive-field multiplicity.
    const ConvParams p = makeConv(1, 1, 4, 1, 3);
    Matrix lowered(p.gemmM(), p.gemmK());
    lowered.fill(1.0f);
    const Tensor folded =
        col2im(p, lowered, ColumnOrder::ChannelLast);
    // Center 2x2 of a 4x4 input with k3/s1: referenced by all 4 windows.
    EXPECT_EQ(folded.at(0, 0, 1, 1), 4.0f);
    // Corner: referenced once.
    EXPECT_EQ(folded.at(0, 0, 0, 0), 1.0f);
}

TEST(Col2Im, RoundTripMatchesMultiplicityWeighting)
{
    const ConvParams p = makeConv(1, 2, 5, 1, 3, 1, 1);
    Tensor input = makeInput(p);
    input.fillRandom(23);
    const Matrix lowered =
        im2colLower(p, input, ColumnOrder::ChannelFirst);
    const Tensor folded =
        col2im(p, lowered, ColumnOrder::ChannelFirst);

    // Build the multiplicity map with an all-ones lowered matrix.
    Matrix ones(p.gemmM(), p.gemmK());
    ones.fill(1.0f);
    const Tensor mult = col2im(p, ones, ColumnOrder::ChannelFirst);

    for (Index c = 0; c < p.inChannels; ++c)
        for (Index h = 0; h < p.inH; ++h)
            for (Index w = 0; w < p.inW; ++w)
                EXPECT_NEAR(folded.at(0, c, h, w),
                            input.at(0, c, h, w) * mult.at(0, c, h, w),
                            1e-4f);
}

} // namespace
} // namespace cfconv::tensor
