/** @file Unit tests for ConvParams geometry and cost math. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tensor/conv_params.h"

namespace cfconv::tensor {
namespace {

TEST(ConvParams, OutputGeometryBasic)
{
    const ConvParams p = makeConv(1, 8, 5, 4, 3);
    EXPECT_EQ(p.outH(), 3);
    EXPECT_EQ(p.outW(), 3);
    EXPECT_EQ(p.gemmM(), 9);
    EXPECT_EQ(p.gemmK(), 72);
    EXPECT_EQ(p.gemmN(), 4);
}

TEST(ConvParams, OutputGeometryStridePad)
{
    // 224x224 k7 s2 p3 -> 112 (ResNet conv1).
    const ConvParams p = makeConv(1, 3, 224, 64, 7, 2, 3);
    EXPECT_EQ(p.outH(), 112);
    EXPECT_EQ(p.outW(), 112);
}

TEST(ConvParams, OutputGeometryDilation)
{
    // Effective kernel = 5 with k3 d2; 9 - 5 + 1 = 5 outputs.
    const ConvParams p = makeConv(1, 1, 9, 1, 3, 1, 0, 2);
    EXPECT_EQ(p.effKernelH(), 5);
    EXPECT_EQ(p.outH(), 5);
}

TEST(ConvParams, FlopsCountsMulAndAdd)
{
    const ConvParams p = makeConv(2, 4, 4, 8, 3, 1, 1);
    // M = 2*4*4 = 32, K = 36, N = 8 -> 2*32*36*8.
    EXPECT_EQ(p.flops(), 2ULL * 32 * 36 * 8);
}

TEST(ConvParams, ByteSizesFollowDataType)
{
    ConvParams p = makeConv(1, 2, 4, 2, 1);
    p.dataType = DataType::Fp16;
    EXPECT_EQ(p.inputBytes(), 2u * 2 * 4 * 4);
    p.dataType = DataType::Fp32;
    EXPECT_EQ(p.inputBytes(), 4u * 2 * 4 * 4);
    p.dataType = DataType::Int8;
    EXPECT_EQ(p.inputBytes(), 1u * 2 * 4 * 4);
}

TEST(ConvParams, LoweredBytesIsMxK)
{
    const ConvParams p = makeConv(1, 8, 6, 4, 3);
    EXPECT_EQ(p.loweredElems(), p.gemmM() * p.gemmK());
}

TEST(ConvParams, PointwiseDetection)
{
    EXPECT_TRUE(makeConv(1, 8, 6, 4, 1).isPointwise());
    EXPECT_FALSE(makeConv(1, 8, 6, 4, 3, 1, 1).isPointwise());
    EXPECT_FALSE(makeConv(1, 8, 6, 4, 1, 2).isPointwise());
}

TEST(ConvParams, ValidateRejectsBadGeometry)
{
    EXPECT_THROW(makeConv(0, 8, 5, 4, 3), FatalError);
    EXPECT_THROW(makeConv(1, 0, 5, 4, 3), FatalError);
    EXPECT_THROW(makeConv(1, 8, 5, 4, 0), FatalError);
    EXPECT_THROW(makeConv(1, 8, 5, 4, 3, 0), FatalError);
    // Kernel larger than padded input.
    EXPECT_THROW(makeConv(1, 8, 3, 4, 5), FatalError);
    // Negative padding.
    EXPECT_THROW(makeConv(1, 8, 5, 4, 3, 1, -1), FatalError);
    // Zero dilation.
    EXPECT_THROW(makeConv(1, 8, 5, 4, 3, 1, 0, 0), FatalError);
}

TEST(ConvParams, ToStringMentionsGeometry)
{
    const ConvParams p = makeConv(2, 16, 28, 32, 3, 2, 1);
    const std::string s = p.toString();
    EXPECT_NE(s.find("C16"), std::string::npos);
    EXPECT_NE(s.find("k3x3"), std::string::npos);
    EXPECT_NE(s.find("s2"), std::string::npos);
}

struct GeometryCase
{
    Index in, k, s, p, d;
    Index expected_out;
};

class ConvGeometry : public ::testing::TestWithParam<GeometryCase>
{
};

TEST_P(ConvGeometry, MatchesClosedForm)
{
    const GeometryCase c = GetParam();
    ConvParams params;
    params.batch = 1;
    params.inChannels = 1;
    params.inH = params.inW = c.in;
    params.outChannels = 1;
    params.kernelH = params.kernelW = c.k;
    params.strideH = params.strideW = c.s;
    params.padH = params.padW = c.p;
    params.dilationH = params.dilationW = c.d;
    params.validate();
    EXPECT_EQ(params.outH(), c.expected_out);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGeometry,
    ::testing::Values(GeometryCase{7, 3, 1, 0, 1, 5},
                      GeometryCase{7, 3, 2, 0, 1, 3},
                      GeometryCase{7, 3, 1, 1, 1, 7},
                      GeometryCase{8, 2, 2, 0, 1, 4},
                      GeometryCase{224, 7, 2, 3, 1, 112},
                      GeometryCase{13, 3, 1, 1, 1, 13},
                      GeometryCase{9, 3, 1, 0, 2, 5},
                      GeometryCase{11, 3, 2, 1, 2, 5},
                      GeometryCase{5, 5, 1, 0, 1, 1},
                      GeometryCase{56, 1, 1, 0, 1, 56}));

} // namespace
} // namespace cfconv::tensor
