/** @file Property tests for rectangular / per-axis-asymmetric
 *  convolutions across the whole lowering stack. */

#include <gtest/gtest.h>

#include "im2col/conv_backward.h"
#include "im2col/filter_decomp.h"
#include "im2col/implicit_conv.h"
#include "tensor/conv_ref.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::tensor {
namespace {

struct RectCase
{
    Index ih, iw, kh, kw, sh, sw, ph, pw, dh, dw;
};

class AsymmetricConv : public ::testing::TestWithParam<RectCase>
{
  protected:
    ConvParams
    params() const
    {
        const RectCase c = GetParam();
        return makeConvRect(2, 3, c.ih, c.iw, 4, c.kh, c.kw, c.sh,
                            c.sw, c.ph, c.pw, c.dh, c.dw);
    }
};

TEST_P(AsymmetricConv, ExplicitLoweringEqualsDirect)
{
    const ConvParams p = params();
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(91);
    filter.fillRandom(93);
    const Tensor ref = convDirect(p, input, filter);
    for (ColumnOrder order :
         {ColumnOrder::ChannelLast, ColumnOrder::ChannelFirst}) {
        EXPECT_LT(convExplicitIm2col(p, input, filter, order)
                      .maxAbsDiff(ref),
                  1e-3f)
            << p.toString();
    }
}

TEST_P(AsymmetricConv, ImplicitEngineEqualsDirect)
{
    const ConvParams p = params();
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(95);
    filter.fillRandom(97);
    const Tensor ref = convDirect(p, input, filter);
    for (Index tiles : {1L, 2L, 3L}) {
        im2col::ImplicitConvOptions options;
        options.tilesPerGroup = tiles;
        EXPECT_LT(im2col::convImplicit(p, input, filter, options)
                      .maxAbsDiff(ref),
                  1e-3f)
            << p.toString() << " tiles " << tiles;
    }
}

TEST_P(AsymmetricConv, BackwardPassesMatchDirect)
{
    const ConvParams p = params();
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(99);
    filter.fillRandom(101);
    Tensor grad_out(p.batch, p.outChannels, p.outH(), p.outW());
    grad_out.fillRandom(103);

    EXPECT_LT(im2col::convBackwardDataImplicit(p, grad_out, filter)
                  .maxAbsDiff(im2col::convBackwardDataDirect(
                      p, grad_out, filter)),
              1e-3f);
    EXPECT_LT(im2col::convBackwardFilterImplicit(p, input, grad_out)
                  .maxAbsDiff(im2col::convBackwardFilterDirect(
                      p, input, grad_out)),
              1e-3f);
}

TEST_P(AsymmetricConv, FootprintsRespectPerAxisGeometry)
{
    const ConvParams p = params();
    for (const auto &tile : im2col::decomposeFilter(p)) {
        const auto fp = im2col::tileFootprint(p, tile);
        EXPECT_EQ(fp.ihStep, p.strideH);
        EXPECT_EQ(fp.iwStep, p.strideW);
        EXPECT_GE(fp.ihBegin, 0);
        EXPECT_LE(fp.ihEnd, p.inH);
        EXPECT_GE(fp.iwBegin, 0);
        EXPECT_LE(fp.iwEnd, p.inW);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RectSweep, AsymmetricConv,
    ::testing::Values(
        RectCase{5, 9, 3, 3, 1, 1, 0, 0, 1, 1},   // wide input
        RectCase{9, 5, 3, 3, 1, 1, 1, 1, 1, 1},   // tall input
        RectCase{7, 7, 1, 5, 1, 1, 0, 2, 1, 1},   // 1x5 kernel
        RectCase{7, 7, 5, 1, 1, 1, 2, 0, 1, 1},   // 5x1 kernel
        RectCase{8, 10, 3, 3, 2, 1, 1, 1, 1, 1},  // stride only in H
        RectCase{10, 8, 3, 3, 1, 2, 1, 1, 1, 1},  // stride only in W
        RectCase{9, 11, 3, 3, 2, 3, 1, 0, 1, 1},  // mixed strides
        RectCase{11, 9, 3, 3, 1, 1, 0, 1, 2, 1},  // dilation in H
        RectCase{9, 12, 2, 3, 2, 2, 0, 1, 1, 2},  // everything mixed
        RectCase{6, 6, 2, 4, 1, 2, 1, 2, 1, 1})); // even kernels

TEST(AsymmetricConv, RectBuilderValidates)
{
    EXPECT_NO_THROW(
        makeConvRect(1, 1, 5, 7, 1, 3, 5, 1, 1, 0, 0, 1, 1));
    EXPECT_THROW(makeConvRect(1, 1, 5, 3, 1, 3, 5, 1, 1, 0, 0, 1, 1),
                 FatalError); // kernel wider than input
}

} // namespace
} // namespace cfconv::tensor
