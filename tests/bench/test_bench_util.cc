/** @file Regression tests for the uniform bench argument parser
 *  (bench/bench_util.h): the workload keys (seed=, stream=) added for
 *  bench_serving, and the strict unknown-argument policy. */

#include <gtest/gtest.h>

#include <vector>

#include "bench_util.h"

namespace cfconv::bench {
namespace {

Status
parse(std::vector<const char *> argv, BenchArgs *args,
      bool supports_json = true, bool supports_workload = false,
      bool supports_algo = false)
{
    argv.insert(argv.begin(), "bench");
    return tryParseBenchArgs(static_cast<int>(argv.size()),
                             const_cast<char **>(argv.data()),
                             supports_json, args, supports_workload,
                             supports_algo);
}

TEST(BenchArgsParse, ParsesCoreKeys)
{
    BenchArgs args;
    ASSERT_TRUE(parse({"threads=4", "json=out.json",
                       "trace=t.json"},
                      &args)
                    .ok());
    EXPECT_EQ(args.threads, 4);
    EXPECT_EQ(args.jsonPath, "out.json");
    EXPECT_EQ(args.tracePath, "t.json");
    EXPECT_EQ(args.seed, 0u);
    EXPECT_TRUE(args.stream.empty());
}

TEST(BenchArgsParse, WorkloadKeysNeedOptIn)
{
    BenchArgs args;
    // Without supports_workload, seed=/stream= are unknown arguments.
    EXPECT_FALSE(parse({"seed=7"}, &args).ok());
    EXPECT_FALSE(parse({"stream=bursty"}, &args).ok());

    ASSERT_TRUE(
        parse({"seed=7", "stream=bursty"}, &args, true, true).ok());
    EXPECT_EQ(args.seed, 7u);
    EXPECT_EQ(args.stream, "bursty");
}

TEST(BenchArgsParse, RejectsMalformedSeeds)
{
    BenchArgs args;
    for (const char *bad :
         {"seed=", "seed=0", "seed=abc", "seed=12x"}) {
        Status status = parse({bad}, &args, true, true);
        EXPECT_FALSE(status.ok()) << bad;
        EXPECT_NE(status.toString().find("seed"), std::string::npos)
            << bad;
    }
}

TEST(BenchArgsParse, RejectsEmptyStream)
{
    BenchArgs args;
    EXPECT_FALSE(parse({"stream="}, &args, true, true).ok());
}

TEST(BenchArgsParse, AlgoKeyNeedsOptIn)
{
    BenchArgs args;
    // Without supports_algo, algo= is an unknown argument, and the
    // menu in the error does not advertise it.
    Status status = parse({"algo=indirect"}, &args);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.toString().find("algo=NAME"), std::string::npos);

    for (const char *name :
         {"channel-first", "channel-last", "explicit-im2col",
          "indirect", "smm"}) {
        BenchArgs parsed;
        const std::string arg = std::string("algo=") + name;
        ASSERT_TRUE(
            parse({arg.c_str()}, &parsed, true, false, true).ok())
            << name;
        EXPECT_EQ(parsed.algo, name);
    }
}

TEST(BenchArgsParse, RejectsUnknownAndMalformedAlgos)
{
    BenchArgs args;
    for (const char *bad : {"algo=", "algo=winograd", "algo=SMM"}) {
        Status status = parse({bad}, &args, true, false, true);
        ASSERT_FALSE(status.ok()) << bad;
        const std::string message = status.toString();
        // The error names the offender and lists the known spellings,
        // matching the seed=/stream= contract.
        EXPECT_NE(message.find("algo="), std::string::npos) << bad;
        EXPECT_NE(message.find("channel-first"), std::string::npos)
            << bad;
    }
}

TEST(BenchArgsParse, UnknownArgumentNamesItselfAndTheMenu)
{
    BenchArgs args;
    Status status = parse({"btach=4"}, &args, true, true);
    ASSERT_FALSE(status.ok());
    const std::string message = status.toString();
    EXPECT_NE(message.find("btach=4"), std::string::npos);
    EXPECT_NE(message.find("seed=N"), std::string::npos);
    EXPECT_NE(message.find("stream=NAME"), std::string::npos);
}

TEST(BenchArgsParse, JsonStaysGatedBySupportsJson)
{
    BenchArgs args;
    EXPECT_FALSE(parse({"json=out.json"}, &args, false).ok());
    Status status = parse({"nope=1"}, &args, false);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.toString().find("json=FILE"), std::string::npos);
}

} // namespace
} // namespace cfconv::bench
