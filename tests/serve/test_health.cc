/** @file Tests for the resilience state machines (serve/health): the
 *  per-chip circuit breaker's closed/open/half-open cycle, canary
 *  accounting, and the degradation ladder's hysteresis windows. */

#include <gtest/gtest.h>

#include "serve/health.h"

namespace cfconv::serve {
namespace {

BreakerPolicy
twoStrikePolicy()
{
    BreakerPolicy policy;
    policy.enabled = true;
    policy.failureThreshold = 2;
    policy.openSeconds = 0.1;
    policy.halfOpenSuccesses = 1;
    return policy;
}

TEST(BreakerStateName, StableNames)
{
    EXPECT_STREQ(breakerStateName(BreakerState::Closed), "closed");
    EXPECT_STREQ(breakerStateName(BreakerState::Open), "open");
    EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen),
                 "half-open");
    EXPECT_STREQ(degradeStepName(0), "normal");
    EXPECT_STREQ(degradeStepName(3), "algorithm-fallback");
}

TEST(HealthTracker, DisabledPolicyTracksOutagesButNeverTrips)
{
    HealthTracker health(2, BreakerPolicy{});
    EXPECT_TRUE(health.dispatchable(0, 0.0));

    health.recordFault(0, 1.0, 1.5);
    EXPECT_TRUE(health.isDown(0, 1.2));
    EXPECT_FALSE(health.dispatchable(0, 1.2));
    EXPECT_DOUBLE_EQ(health.blockedUntil(0), 1.5);
    // Repair window over: dispatchable again, breaker never engaged.
    EXPECT_FALSE(health.isDown(0, 1.5));
    EXPECT_TRUE(health.dispatchable(0, 1.5));

    health.recordFault(0, 2.0, 2.1);
    health.recordFault(0, 3.0, 3.1);
    EXPECT_EQ(health.state(0, 3.2), BreakerState::Closed);
    EXPECT_EQ(health.trips(), 0);
    EXPECT_EQ(health.aliveChips(2.05), 1u); // chip 0 down, chip 1 up
}

TEST(HealthTracker, ConsecutiveFaultsTripAndCanaryCloses)
{
    HealthTracker health(2, twoStrikePolicy());

    // One fault is below the threshold; a success resets the count.
    health.recordFault(0, 1.0, 1.01);
    EXPECT_EQ(health.state(0, 1.02), BreakerState::Closed);
    health.recordSuccess(0, 1.05, 0.01);
    health.recordFault(0, 2.0, 2.01);
    EXPECT_EQ(health.trips(), 0);

    // The second consecutive fault trips the breaker open.
    health.recordFault(0, 2.1, 2.11);
    EXPECT_EQ(health.trips(), 1);
    EXPECT_EQ(health.state(0, 2.15), BreakerState::Open);
    EXPECT_FALSE(health.dispatchable(0, 2.15));
    EXPECT_FALSE(health.canaryReady(0, 2.15));
    EXPECT_DOUBLE_EQ(health.blockedUntil(0), 2.1 + 0.1);

    // Cooldown elapses by time alone: half-open, one canary admitted.
    const double probeAt = 2.1 + 0.1;
    EXPECT_EQ(health.state(0, probeAt), BreakerState::HalfOpen);
    EXPECT_FALSE(health.dispatchable(0, probeAt));
    EXPECT_TRUE(health.canaryReady(0, probeAt));
    health.markCanary(0);
    EXPECT_EQ(health.probes(), 1);
    EXPECT_FALSE(health.canaryReady(0, probeAt)); // one in flight

    // Canary success closes the breaker.
    health.recordSuccess(0, probeAt + 0.01, 0.01);
    EXPECT_EQ(health.closes(), 1);
    EXPECT_EQ(health.state(0, probeAt + 0.01), BreakerState::Closed);
    EXPECT_TRUE(health.dispatchable(0, probeAt + 0.02));
    // The other chip was never touched.
    EXPECT_EQ(health.state(1, probeAt), BreakerState::Closed);
}

TEST(HealthTracker, FailedCanaryReopensAndHalfOpenQuota)
{
    BreakerPolicy policy = twoStrikePolicy();
    policy.halfOpenSuccesses = 2;
    HealthTracker health(1, policy);

    health.recordFault(0, 0.0, 0.01);
    health.recordFault(0, 0.02, 0.03);
    ASSERT_EQ(health.state(0, 0.05), BreakerState::Open);

    // A fault while tripped (failed canary) re-opens immediately and
    // restarts the cooldown from that instant.
    health.markCanary(0);
    health.recordFault(0, 0.12, 0.13);
    EXPECT_EQ(health.trips(), 2);
    EXPECT_EQ(health.state(0, 0.15), BreakerState::Open);
    EXPECT_EQ(health.state(0, 0.22), BreakerState::HalfOpen);

    // halfOpenSuccesses=2: the first canary success keeps it half-open.
    health.markCanary(0);
    health.recordSuccess(0, 0.23, 0.005);
    EXPECT_EQ(health.closes(), 0);
    EXPECT_EQ(health.state(0, 0.23), BreakerState::HalfOpen);
    EXPECT_TRUE(health.canaryReady(0, 0.23));
    health.markCanary(0);
    health.recordSuccess(0, 0.24, 0.005);
    EXPECT_EQ(health.closes(), 1);
    EXPECT_EQ(health.state(0, 0.24), BreakerState::Closed);
}

TEST(HealthTracker, SuccessWithoutCanaryDoesNotCloseAnOpenBreaker)
{
    HealthTracker health(1, twoStrikePolicy());
    health.recordFault(0, 0.0, 0.01);
    health.recordFault(0, 0.02, 0.03);
    ASSERT_EQ(health.trips(), 1);
    // A stray success while open (e.g. a batch launched before the
    // trip completing) must not close the breaker: only a marked
    // canary after the cooldown counts.
    health.recordSuccess(0, 0.05, 0.01);
    EXPECT_EQ(health.closes(), 0);
    EXPECT_EQ(health.state(0, 0.05), BreakerState::Open);
}

TEST(HealthTracker, MeanServiceSecondsAveragesSuccesses)
{
    HealthTracker health(1, BreakerPolicy{});
    EXPECT_DOUBLE_EQ(health.meanServiceSeconds(0), 0.0);
    health.recordSuccess(0, 1.0, 0.02);
    health.recordSuccess(0, 2.0, 0.04);
    EXPECT_DOUBLE_EQ(health.meanServiceSeconds(0), 0.03);
}

DegradationPolicy
fastLadder()
{
    DegradationPolicy policy;
    policy.enabled = true;
    policy.stepUpPressure = 2.0;
    policy.stepUpAfterSeconds = 0.01;
    policy.stepDownPressure = 0.5;
    policy.stepDownAfterSeconds = 0.02;
    return policy;
}

TEST(DegradationLadder, DisabledLadderNeverMoves)
{
    DegradationLadder ladder(DegradationPolicy{});
    EXPECT_FALSE(ladder.observe(0.0, 100.0));
    EXPECT_FALSE(ladder.observe(10.0, 100.0));
    EXPECT_EQ(ladder.step(), 0);
    EXPECT_EQ(ladder.transitions(), 0);
}

TEST(DegradationLadder, StepsUpOnlyAfterSustainedPressure)
{
    DegradationLadder ladder(fastLadder());
    EXPECT_FALSE(ladder.observe(0.000, 3.0)); // window starts
    EXPECT_FALSE(ladder.observe(0.005, 3.0)); // not sustained yet
    EXPECT_TRUE(ladder.observe(0.010, 3.0));  // full window: step 1
    EXPECT_EQ(ladder.step(), 1);

    // The window re-arms after each transition.
    EXPECT_FALSE(ladder.observe(0.012, 3.0));
    EXPECT_TRUE(ladder.observe(0.022, 3.0));
    EXPECT_EQ(ladder.step(), 2);
    EXPECT_EQ(ladder.maxStepReached(), 2);
    EXPECT_EQ(ladder.transitions(), 2);
}

TEST(DegradationLadder, MidBandPressureResetsBothWindows)
{
    DegradationLadder ladder(fastLadder());
    EXPECT_FALSE(ladder.observe(0.000, 3.0));
    EXPECT_FALSE(ladder.observe(0.009, 1.0)); // mid-band: reset
    EXPECT_FALSE(ladder.observe(0.010, 3.0)); // window restarts here
    EXPECT_FALSE(ladder.observe(0.019, 3.0));
    EXPECT_TRUE(ladder.observe(0.020, 3.0));
    EXPECT_EQ(ladder.step(), 1);
}

TEST(DegradationLadder, StepsBackDownAfterSustainedRelief)
{
    DegradationLadder ladder(fastLadder());
    EXPECT_FALSE(ladder.observe(0.00, 3.0));
    EXPECT_TRUE(ladder.observe(0.01, 3.0));
    ASSERT_EQ(ladder.step(), 1);

    EXPECT_FALSE(ladder.observe(0.02, 0.1)); // relief window starts
    EXPECT_FALSE(ladder.observe(0.03, 0.1));
    EXPECT_TRUE(ladder.observe(0.04, 0.1)); // 0.02s sustained: down
    EXPECT_EQ(ladder.step(), 0);
    EXPECT_EQ(ladder.maxStepReached(), 1);
    EXPECT_EQ(ladder.transitions(), 2);
    // At step 0 relief can go no further.
    EXPECT_FALSE(ladder.observe(0.10, 0.1));
}

TEST(DegradationLadder, MaxStepClampAndOccupancyAccounting)
{
    DegradationPolicy policy = fastLadder();
    policy.maxStep = 1;
    DegradationLadder ladder(policy);
    EXPECT_FALSE(ladder.observe(0.00, 9.0));
    EXPECT_TRUE(ladder.observe(0.01, 9.0));
    // Clamped: pressure may stay sky-high, step 1 is the floor.
    EXPECT_FALSE(ladder.observe(0.02, 9.0));
    EXPECT_FALSE(ladder.observe(0.05, 9.0));
    EXPECT_EQ(ladder.step(), 1);

    ladder.finalize(0.06);
    EXPECT_DOUBLE_EQ(ladder.secondsAtStep(0), 0.01);
    EXPECT_DOUBLE_EQ(ladder.secondsAtStep(1), 0.05);
    EXPECT_DOUBLE_EQ(ladder.secondsAtStep(2), 0.0);
    EXPECT_DOUBLE_EQ(ladder.secondsAtStep(3), 0.0);
}

} // namespace
} // namespace cfconv::serve
