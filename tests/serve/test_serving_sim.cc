/** @file Tests for the request-level serving simulator
 *  (serve/serving_sim): conservation of requests, byte-identical
 *  records across thread counts, the batching and multi-chip wins the
 *  bench asserts, admission-control shedding, and chaos-under-load
 *  with the serve.chip_down site. */

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/parallel.h"
#include "models/model_zoo.h"
#include "serve/serving_sim.h"
#include "sim/report.h"

namespace cfconv::serve {
namespace {

/** Small-model mix so each test stays fast (cost evaluations are
 *  memoized per simulator instance). */
ModelMix
tinyMix()
{
    return {{"alexnet", &models::alexnet, 3.0},
            {"zfnet", &models::zfnet, 1.0}};
}

TrafficSpec
lightTraffic(std::uint64_t seed = 42)
{
    TrafficSpec spec;
    spec.ratePerSecond = 400;
    spec.horizonSeconds = 0.25;
    spec.seed = seed;
    return spec;
}

TEST(ServingSim, ConservesRequestsAndDrains)
{
    ServingConfig config;
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic());

    EXPECT_GT(result.offered, 0);
    EXPECT_EQ(result.offered, result.completed + result.shed);
    EXPECT_EQ(result.shed, 0); // unbounded admission: nothing shed
    EXPECT_GT(result.makespanSeconds, 0.0);
    EXPECT_GT(result.throughputRps, 0.0);
    EXPECT_GE(result.throughputRps, result.goodputRps);
    EXPECT_GT(result.p50, 0.0);
    EXPECT_LE(result.p50, result.p99);
    EXPECT_LE(result.p99, result.p999);

    // The record mirrors the result.
    const sim::RunRecord &record = result.record;
    EXPECT_EQ(record.accelerator, "serve:1xtpu-v2");
    EXPECT_EQ(record.model, "serving");
    ASSERT_EQ(record.layers.size(), 2u);
    Index completed = 0;
    for (const auto &layer : record.layers)
        completed += layer.count;
    EXPECT_EQ(completed, result.completed);
    EXPECT_GT(record.tflops, 0.0);
    EXPECT_FALSE(record.resilience.active);
}

TEST(ServingSim, ByteIdenticalRecordsAcrossThreadCounts)
{
    // Empty meta: compare the records payload alone, excluding the
    // process-global live-metrics block (wall-clock histograms), the
    // same split the byte-identity gates use.
    const auto runOnce = [] {
        ServingConfig config;
        config.chips = {ChipSpec{"tpu-v2"}, ChipSpec{"tpu-v2"}};
        ServingSimulator sim(config, tinyMix());
        return sim::runRecordsJson({sim.run(lightTraffic(7)).record},
                                   sim::ReportMeta{});
    };
    parallel::setThreads(1);
    const std::string serial = runOnce();
    parallel::setThreads(4);
    const std::string parallel4 = runOnce();
    parallel::setThreads(0);
    EXPECT_EQ(serial, parallel4);
}

TEST(ServingSim, DifferentSeedsDifferentRecords)
{
    ServingConfig config;
    ServingSimulator sim(config, tinyMix());
    const auto a = sim::runRecordsJson(
        {sim.run(lightTraffic(1)).record}, sim::ReportMeta{});
    const auto b = sim::runRecordsJson(
        {sim.run(lightTraffic(2)).record}, sim::ReportMeta{});
    EXPECT_NE(a, b);
}

TEST(ServingSim, BatchingBeatsBatchOneUnderLoad)
{
    TrafficSpec traffic;
    traffic.ratePerSecond = 3000; // past batch-1 capacity
    traffic.horizonSeconds = 0.1;
    traffic.seed = 13;

    ServingConfig config;
    config.batch.maxBatch = 1;
    ServingSimulator noBatch(config, tinyMix());
    const ServingResult one = noBatch.run(traffic);

    config.batch.maxBatch = 16;
    config.batch.maxWaitSeconds = 2e-3;
    ServingSimulator batched(config, tinyMix());
    const ServingResult sixteen = batched.run(traffic);

    EXPECT_GT(sixteen.meanBatch, 1.5);
    EXPECT_GT(sixteen.throughputRps, one.throughputRps);
    EXPECT_LT(sixteen.p99, one.p99); // queueing dominates at batch 1
}

TEST(ServingSim, FourChipsScaleThroughput)
{
    // Offered load far past even the 4-chip capacity, so both boards
    // run flat out and throughput is pure drain rate.
    TrafficSpec traffic;
    traffic.ratePerSecond = 60000;
    traffic.horizonSeconds = 0.02;
    traffic.seed = 17;

    ServingConfig config;
    config.batch.maxBatch = 8;
    ServingSimulator single(config, tinyMix());
    const ServingResult one = single.run(traffic);

    config.chips.assign(4, ChipSpec{"tpu-v2"});
    ServingSimulator quad(config, tinyMix());
    const ServingResult four = quad.run(traffic);

    // Saturated offered load: a 4-chip board must scale well.
    EXPECT_GT(four.throughputRps, 2.5 * one.throughputRps);
    EXPECT_LT(four.p99, one.p99);
}

TEST(ServingSim, HeterogeneousBoardPrefersTheFastChip)
{
    ServingConfig config;
    config.chips = {ChipSpec{"tpu-v2"}, ChipSpec{"tpu-v3ish"}};
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic(19));
    EXPECT_EQ(result.offered, result.completed);
    EXPECT_EQ(result.record.accelerator,
              "serve:1xtpu-v2+1xtpu-v3ish");
}

TEST(ServingSim, AdmissionControlBoundsTheQueueAndKeepsGoodput)
{
    // Sustained ~1.5x overload long enough that the unbounded queue's
    // drain tail blows far past the SLO.
    TrafficSpec traffic;
    traffic.ratePerSecond = 8000;
    traffic.horizonSeconds = 0.3;
    traffic.seed = 23;

    ServingConfig config;
    config.batch.maxBatch = 8;
    ServingSimulator open(config, tinyMix());
    const ServingResult unbounded = open.run(traffic);
    EXPECT_EQ(unbounded.shed, 0);

    config.admission.maxQueuePerClass = 32;
    ServingSimulator bounded(config, tinyMix());
    const ServingResult shed = bounded.run(traffic);

    EXPECT_GT(shed.shed, 0);
    EXPECT_LT(shed.shedFraction, 1.0);
    EXPECT_EQ(shed.offered, shed.completed + shed.shed);
    // Shedding keeps latency bounded, so goodput beats the open door.
    EXPECT_LT(shed.p99, unbounded.p99);
    EXPECT_GE(shed.goodputRps, unbounded.goodputRps);
}

TEST(ServingSim, DataParallelShardingCutsLatency)
{
    TrafficSpec traffic;
    traffic.ratePerSecond = 200; // light: chips usually idle
    traffic.horizonSeconds = 0.1;
    traffic.seed = 29;

    ServingConfig config;
    config.chips.assign(4, ChipSpec{"tpu-v2"});
    config.batch.maxBatch = 32;
    config.batch.maxWaitSeconds = 5e-3;
    ServingSimulator solo(config, tinyMix());
    const ServingResult unsharded = solo.run(traffic);

    config.shardMode = ShardMode::DataParallel;
    config.maxShards = 4;
    ServingSimulator sharded(config, tinyMix());
    const ServingResult split = sharded.run(traffic);

    EXPECT_EQ(split.completed, split.offered);
    EXPECT_LT(split.p99, unsharded.p99);
}

TEST(ServingSim, ChaosChipDownRetriesEverythingToCompletion)
{
    auto &injector = fault::FaultInjector::instance();
    ASSERT_TRUE(injector
                    .configure("seed=99; serve.chip_down=0.2")
                    .ok());

    ServingConfig config;
    config.chips.assign(2, ChipSpec{"tpu-v2"});
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic(31));
    const std::string doc =
        sim::runRecordsJson({result.record}, sim::ReportMeta{});
    injector.disarm();

    EXPECT_GT(result.chipDownEvents, 0);
    EXPECT_EQ(result.offered, result.completed + result.shed);
    EXPECT_EQ(result.shed, 0); // outages delay, never drop
    EXPECT_TRUE(result.record.resilience.active);
    EXPECT_GE(result.record.resilience.faultsSeen,
              result.chipDownEvents);
    EXPECT_GE(result.record.resilience.retries, 1);
    // Armed injector stamps the v3 resilience block.
    EXPECT_NE(doc.find("\"resilience\""), std::string::npos);

    // Chaos runs are reproducible: same spec, same record.
    ASSERT_TRUE(injector
                    .configure("seed=99; serve.chip_down=0.2")
                    .ok());
    ServingSimulator again(config, tinyMix());
    const std::string doc2 = sim::runRecordsJson(
        {again.run(lightTraffic(31)).record}, sim::ReportMeta{});
    injector.disarm();
    EXPECT_EQ(doc, doc2);
}

TEST(ServingConfigValidation, NamesTheOffendingField)
{
    ServingConfig config;
    EXPECT_TRUE(validateServingConfig(config).ok());

    config.chips.clear();
    Status status = validateServingConfig(config);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.toString().find("chips"), std::string::npos);

    config = ServingConfig{};
    config.sloSeconds = 0.0;
    status = validateServingConfig(config);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("sloSeconds"), std::string::npos);

    config = ServingConfig{};
    config.breaker.enabled = true;
    config.breaker.failureThreshold = 0;
    status = validateServingConfig(config);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("breaker.failureThreshold"),
              std::string::npos);
    // The same knobs are legal while the breaker stays disabled.
    config.breaker.enabled = false;
    EXPECT_TRUE(validateServingConfig(config).ok());

    config = ServingConfig{};
    config.degradation.enabled = true;
    config.degradation.stepUpPressure = 1.0;
    config.degradation.stepDownPressure = 2.0;
    status = validateServingConfig(config);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("stepUpPressure"),
              std::string::npos);

    config = ServingConfig{};
    config.degradation.enabled = true;
    config.degradation.maxStep = 4;
    status = validateServingConfig(config);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("degradation.maxStep"),
              std::string::npos);

    config = ServingConfig{};
    config.hedge.enabled = true;
    config.hedge.minSamples = 0;
    status = validateServingConfig(config);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("hedge.minSamples"),
              std::string::npos);

    config = ServingConfig{};
    config.fallbackVariants = {"tpu-v9-retired"};
    status = validateServingConfig(config);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.toString().find("tpu-v9-retired"),
              std::string::npos);
}

TEST(ServingSim, ZeroMaxWaitLaunchesImmediately)
{
    ServingConfig config;
    config.batch.maxWaitSeconds = 0.0;
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic(41));
    EXPECT_EQ(result.offered, result.completed);
    // No batching delay: light-traffic batches are mostly singletons
    // and queue wait never contributes a max-wait hold.
    EXPECT_LT(result.meanBatch, 2.0);
    EXPECT_GT(result.p50, 0.0);
}

TEST(ServingSim, ZeroMaxQueueAdmitsEverything)
{
    // maxQueuePerClass=0 is the unbounded sentinel, not "shed all".
    TrafficSpec traffic;
    traffic.ratePerSecond = 8000; // well past capacity
    traffic.horizonSeconds = 0.05;
    traffic.seed = 43;
    ServingConfig config;
    config.admission.maxQueuePerClass = 0;
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(traffic);
    EXPECT_EQ(result.shed, 0);
    EXPECT_EQ(result.offered, result.completed);
}

TEST(ModelClasses, UnknownNameIsNotFoundListingTheZoo)
{
    const auto made = makeModelClass("not-a-model");
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), StatusCode::kNotFound);
    // The error lists the valid names so the CLI message is usable.
    EXPECT_NE(made.status().toString().find("alexnet"),
              std::string::npos);
}

TEST(ModelClasses, ParseClassSpecsRoundTripsAndNamesOffenders)
{
    const auto mix = parseClassSpecs("alexnet:2:0:50,zfnet:1:1:100");
    ASSERT_TRUE(mix.ok()) << mix.status().toString();
    ASSERT_EQ(mix.value().size(), 2u);
    EXPECT_EQ(mix.value()[0].name, "alexnet");
    EXPECT_DOUBLE_EQ(mix.value()[0].weight, 2.0);
    EXPECT_EQ(mix.value()[0].priority, 0);
    EXPECT_DOUBLE_EQ(mix.value()[0].sloSeconds, 50e-3);
    EXPECT_EQ(mix.value()[1].priority, 1);
    EXPECT_DOUBLE_EQ(mix.value()[1].sloSeconds, 100e-3);

    const auto bad = parseClassSpecs("alexnet:bogus");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(bad.status().toString().find("bogus"),
              std::string::npos);
    EXPECT_FALSE(parseClassSpecs("unknown-model:1").ok());
    EXPECT_FALSE(parseClassSpecs("").ok());
}

TEST(ServingSim, PerClassSloSplitsGoodputAccounting)
{
    // Class 0 gets a generous SLO, class 1 an impossible one: every
    // completed class-1 request violates, class 0 never does.
    ModelMix mix = tinyMix();
    mix[0].sloSeconds = 1.0;
    mix[1].sloSeconds = 1e-9;
    ServingConfig config;
    ServingSimulator sim(config, mix);
    const ServingResult result = sim.run(lightTraffic(47));
    ASSERT_EQ(result.classes.size(), 2u);
    EXPECT_EQ(result.classes[0].sloViolations, 0);
    EXPECT_EQ(result.classes[1].sloViolations,
              result.classes[1].completed);
    EXPECT_GT(result.classes[1].completed, 0);
    EXPECT_LT(result.goodputRps, result.throughputRps);
}

TEST(ServingSim, BrownoutShedsTheLowestPriorityClassFirst)
{
    // Sustained overload with an aggressive ladder: step 2 sheds the
    // high-tier (least important) class at arrival while the tier-0
    // class keeps being admitted.
    ModelMix mix = tinyMix();
    mix[0].priority = 0;
    mix[1].priority = 1;
    TrafficSpec traffic;
    traffic.ratePerSecond = 12000;
    traffic.horizonSeconds = 0.1;
    traffic.seed = 53;

    ServingConfig config;
    config.batch.maxBatch = 8;
    config.degradation.enabled = true;
    config.degradation.maxStep = 2;
    config.degradation.stepUpPressure = 1.5;
    config.degradation.stepUpAfterSeconds = 2e-3;
    config.degradation.stepDownPressure = 0.5;
    config.degradation.stepDownAfterSeconds = 50e-3;
    ServingSimulator sim(config, mix);
    const ServingResult result = sim.run(traffic);

    EXPECT_EQ(result.offered, result.completed + result.shed);
    EXPECT_GT(result.brownoutShed, 0);
    EXPECT_EQ(result.degradeStepMax, 2);
    ASSERT_EQ(result.classes.size(), 2u);
    EXPECT_EQ(result.classes[0].brownoutShed, 0);
    EXPECT_EQ(result.classes[1].brownoutShed, result.brownoutShed);
    EXPECT_GT(result.degradeTransitions, 0);
    EXPECT_GT(result.degradeSeconds[2], 0.0);
}

TEST(ServingSim, AlgorithmFallbackServesOnTheCheapestVariant)
{
    TrafficSpec traffic;
    traffic.ratePerSecond = 12000;
    traffic.horizonSeconds = 0.1;
    traffic.seed = 59;

    ServingConfig config;
    config.batch.maxBatch = 8;
    config.degradation.enabled = true;
    config.degradation.stepUpPressure = 1.5;
    config.degradation.stepUpAfterSeconds = 1e-3;
    config.degradation.stepDownPressure = 0.5;
    config.degradation.stepDownAfterSeconds = 50e-3;
    // tpu-v3ish is strictly faster than tpu-v2, so the fallback step
    // both engages and visibly helps.
    config.fallbackVariants = {"tpu-v3ish"};
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(traffic);

    EXPECT_EQ(result.degradeStepMax, 3);
    EXPECT_GT(result.fallbackBatches, 0);
    EXPECT_GT(result.degradeSeconds[3], 0.0);
    EXPECT_EQ(result.offered, result.completed + result.shed);
}

TEST(ServingSim, HedgingDuplicatesStragglersFirstCompletionWins)
{
    // Bursty overload on a 3-chip board: batches that waited past the
    // observed median latency re-launch on a second idle chip.
    TrafficSpec traffic;
    traffic.ratePerSecond = 9000;
    traffic.horizonSeconds = 0.1;
    traffic.seed = 61;

    ServingConfig config;
    config.chips.assign(3, ChipSpec{"tpu-v2"});
    config.batch.maxBatch = 8;
    config.hedge.enabled = true;
    config.hedge.latencyPercentile = 0.5;
    config.hedge.minSamples = 4;
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(traffic);

    EXPECT_GT(result.hedgedBatches, 0);
    EXPECT_EQ(result.hedgedBatches,
              result.hedgeWins + result.hedgeLosses);
    EXPECT_EQ(result.offered, result.completed + result.shed);
}

TEST(ServingSim, BreakersRouteAroundARepeatOffender)
{
    auto &injector = fault::FaultInjector::instance();
    ASSERT_TRUE(injector
                    .configure("seed=42; serve.chip_down@gpu-v100=0.6")
                    .ok());

    ServingConfig config;
    config.chips = {ChipSpec{"gpu-v100"}, ChipSpec{"tpu-v2"},
                    ChipSpec{"tpu-v2"}};
    config.breaker.enabled = true;
    config.breaker.failureThreshold = 2;
    config.breaker.openSeconds = 50e-3;
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic(67));
    const std::string doc =
        sim::runRecordsJson({result.record}, sim::ReportMeta{});
    injector.disarm();

    // The dispatcher blind-spot regression: every offered request is
    // accounted for even while the preferred chip flaps and trips.
    EXPECT_EQ(result.offered, result.completed + result.shed);
    EXPECT_GT(result.chipDownEvents, 0);
    EXPECT_GT(result.breakerTrips, 0);
    EXPECT_GE(result.breakerProbes, result.breakerCloses);

    // The record mirrors the resilience outcome into the serving
    // block and stamps the v5 schema.
    const auto &serving = result.record.resilience.serving;
    EXPECT_TRUE(result.record.resilience.active);
    EXPECT_TRUE(serving.active);
    EXPECT_EQ(serving.breakerTrips, result.breakerTrips);
    EXPECT_EQ(serving.hedgeWins, result.hedgeWins);
    EXPECT_NE(doc.find("\"version\": 5"), std::string::npos);
    EXPECT_NE(doc.find("\"breaker_trips\""), std::string::npos);

    // Reproducible: same chaos spec, same bytes.
    ASSERT_TRUE(injector
                    .configure("seed=42; serve.chip_down@gpu-v100=0.6")
                    .ok());
    ServingSimulator again(config, tinyMix());
    const std::string doc2 = sim::runRecordsJson(
        {again.run(lightTraffic(67)).record}, sim::ReportMeta{});
    injector.disarm();
    EXPECT_EQ(doc, doc2);
}

TEST(ServingSim, ResilientChaosByteIdenticalAcrossThreadCounts)
{
    const auto runOnce = [] {
        auto &injector = fault::FaultInjector::instance();
        EXPECT_TRUE(
            injector
                .configure("seed=42; serve.chip_down@gpu-v100=0.6;"
                           " serve.chip_down=0.01")
                .ok());
        ServingConfig config;
        config.chips = {ChipSpec{"gpu-v100"}, ChipSpec{"tpu-v2"},
                        ChipSpec{"tpu-v2"}};
        config.admission.maxQueuePerClass = 32;
        config.breaker.enabled = true;
        config.degradation.enabled = true;
        config.hedge.enabled = true;
        config.fallbackVariants = {"tpu-v3ish"};
        ServingSimulator sim(config, tinyMix());
        const std::string doc = sim::runRecordsJson(
            {sim.run(lightTraffic(71)).record}, sim::ReportMeta{});
        injector.disarm();
        return doc;
    };
    parallel::setThreads(1);
    const std::string serial = runOnce();
    parallel::setThreads(4);
    const std::string parallel4 = runOnce();
    parallel::setThreads(0);
    EXPECT_EQ(serial, parallel4);
}

TEST(ServingSim, FaultFreeResilienceConfigKeepsTheLegacySchema)
{
    // Enabled-but-unexercised resilience must not perturb the
    // document: without an armed injector the record stays v2 with no
    // resilience block, byte-compatible with pre-resilience readers.
    ServingConfig config;
    config.breaker.enabled = true;
    config.hedge.enabled = true;
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic(73));
    EXPECT_FALSE(result.record.resilience.active);
    const std::string doc =
        sim::runRecordsJson({result.record}, sim::ReportMeta{});
    EXPECT_NE(doc.find("\"version\": 2"), std::string::npos);
    EXPECT_EQ(doc.find("\"resilience\""), std::string::npos);
}

TEST(ServingSim, PolicySweepReusesCostEvaluations)
{
    ServingConfig config;
    ServingSimulator sim(config, tinyMix());
    sim.run(lightTraffic(37));
    const Index cold = sim.costModel().evaluations();
    EXPECT_GT(cold, 0);
    sim.setScenario("again");
    sim.run(lightTraffic(37));
    EXPECT_EQ(sim.costModel().evaluations(), cold); // all memo hits
}

} // namespace
} // namespace cfconv::serve
