/** @file Tests for the request-level serving simulator
 *  (serve/serving_sim): conservation of requests, byte-identical
 *  records across thread counts, the batching and multi-chip wins the
 *  bench asserts, admission-control shedding, and chaos-under-load
 *  with the serve.chip_down site. */

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/parallel.h"
#include "models/model_zoo.h"
#include "serve/serving_sim.h"
#include "sim/report.h"

namespace cfconv::serve {
namespace {

/** Small-model mix so each test stays fast (cost evaluations are
 *  memoized per simulator instance). */
ModelMix
tinyMix()
{
    return {{"alexnet", &models::alexnet, 3.0},
            {"zfnet", &models::zfnet, 1.0}};
}

TrafficSpec
lightTraffic(std::uint64_t seed = 42)
{
    TrafficSpec spec;
    spec.ratePerSecond = 400;
    spec.horizonSeconds = 0.25;
    spec.seed = seed;
    return spec;
}

TEST(ServingSim, ConservesRequestsAndDrains)
{
    ServingConfig config;
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic());

    EXPECT_GT(result.offered, 0);
    EXPECT_EQ(result.offered, result.completed + result.shed);
    EXPECT_EQ(result.shed, 0); // unbounded admission: nothing shed
    EXPECT_GT(result.makespanSeconds, 0.0);
    EXPECT_GT(result.throughputRps, 0.0);
    EXPECT_GE(result.throughputRps, result.goodputRps);
    EXPECT_GT(result.p50, 0.0);
    EXPECT_LE(result.p50, result.p99);
    EXPECT_LE(result.p99, result.p999);

    // The record mirrors the result.
    const sim::RunRecord &record = result.record;
    EXPECT_EQ(record.accelerator, "serve:1xtpu-v2");
    EXPECT_EQ(record.model, "serving");
    ASSERT_EQ(record.layers.size(), 2u);
    Index completed = 0;
    for (const auto &layer : record.layers)
        completed += layer.count;
    EXPECT_EQ(completed, result.completed);
    EXPECT_GT(record.tflops, 0.0);
    EXPECT_FALSE(record.resilience.active);
}

TEST(ServingSim, ByteIdenticalRecordsAcrossThreadCounts)
{
    // Empty meta: compare the records payload alone, excluding the
    // process-global live-metrics block (wall-clock histograms), the
    // same split the byte-identity gates use.
    const auto runOnce = [] {
        ServingConfig config;
        config.chips = {ChipSpec{"tpu-v2"}, ChipSpec{"tpu-v2"}};
        ServingSimulator sim(config, tinyMix());
        return sim::runRecordsJson({sim.run(lightTraffic(7)).record},
                                   sim::ReportMeta{});
    };
    parallel::setThreads(1);
    const std::string serial = runOnce();
    parallel::setThreads(4);
    const std::string parallel4 = runOnce();
    parallel::setThreads(0);
    EXPECT_EQ(serial, parallel4);
}

TEST(ServingSim, DifferentSeedsDifferentRecords)
{
    ServingConfig config;
    ServingSimulator sim(config, tinyMix());
    const auto a = sim::runRecordsJson(
        {sim.run(lightTraffic(1)).record}, sim::ReportMeta{});
    const auto b = sim::runRecordsJson(
        {sim.run(lightTraffic(2)).record}, sim::ReportMeta{});
    EXPECT_NE(a, b);
}

TEST(ServingSim, BatchingBeatsBatchOneUnderLoad)
{
    TrafficSpec traffic;
    traffic.ratePerSecond = 3000; // past batch-1 capacity
    traffic.horizonSeconds = 0.1;
    traffic.seed = 13;

    ServingConfig config;
    config.batch.maxBatch = 1;
    ServingSimulator noBatch(config, tinyMix());
    const ServingResult one = noBatch.run(traffic);

    config.batch.maxBatch = 16;
    config.batch.maxWaitSeconds = 2e-3;
    ServingSimulator batched(config, tinyMix());
    const ServingResult sixteen = batched.run(traffic);

    EXPECT_GT(sixteen.meanBatch, 1.5);
    EXPECT_GT(sixteen.throughputRps, one.throughputRps);
    EXPECT_LT(sixteen.p99, one.p99); // queueing dominates at batch 1
}

TEST(ServingSim, FourChipsScaleThroughput)
{
    // Offered load far past even the 4-chip capacity, so both boards
    // run flat out and throughput is pure drain rate.
    TrafficSpec traffic;
    traffic.ratePerSecond = 60000;
    traffic.horizonSeconds = 0.02;
    traffic.seed = 17;

    ServingConfig config;
    config.batch.maxBatch = 8;
    ServingSimulator single(config, tinyMix());
    const ServingResult one = single.run(traffic);

    config.chips.assign(4, ChipSpec{"tpu-v2"});
    ServingSimulator quad(config, tinyMix());
    const ServingResult four = quad.run(traffic);

    // Saturated offered load: a 4-chip board must scale well.
    EXPECT_GT(four.throughputRps, 2.5 * one.throughputRps);
    EXPECT_LT(four.p99, one.p99);
}

TEST(ServingSim, HeterogeneousBoardPrefersTheFastChip)
{
    ServingConfig config;
    config.chips = {ChipSpec{"tpu-v2"}, ChipSpec{"tpu-v3ish"}};
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic(19));
    EXPECT_EQ(result.offered, result.completed);
    EXPECT_EQ(result.record.accelerator,
              "serve:1xtpu-v2+1xtpu-v3ish");
}

TEST(ServingSim, AdmissionControlBoundsTheQueueAndKeepsGoodput)
{
    // Sustained ~1.5x overload long enough that the unbounded queue's
    // drain tail blows far past the SLO.
    TrafficSpec traffic;
    traffic.ratePerSecond = 8000;
    traffic.horizonSeconds = 0.3;
    traffic.seed = 23;

    ServingConfig config;
    config.batch.maxBatch = 8;
    ServingSimulator open(config, tinyMix());
    const ServingResult unbounded = open.run(traffic);
    EXPECT_EQ(unbounded.shed, 0);

    config.admission.maxQueuePerClass = 32;
    ServingSimulator bounded(config, tinyMix());
    const ServingResult shed = bounded.run(traffic);

    EXPECT_GT(shed.shed, 0);
    EXPECT_LT(shed.shedFraction, 1.0);
    EXPECT_EQ(shed.offered, shed.completed + shed.shed);
    // Shedding keeps latency bounded, so goodput beats the open door.
    EXPECT_LT(shed.p99, unbounded.p99);
    EXPECT_GE(shed.goodputRps, unbounded.goodputRps);
}

TEST(ServingSim, DataParallelShardingCutsLatency)
{
    TrafficSpec traffic;
    traffic.ratePerSecond = 200; // light: chips usually idle
    traffic.horizonSeconds = 0.1;
    traffic.seed = 29;

    ServingConfig config;
    config.chips.assign(4, ChipSpec{"tpu-v2"});
    config.batch.maxBatch = 32;
    config.batch.maxWaitSeconds = 5e-3;
    ServingSimulator solo(config, tinyMix());
    const ServingResult unsharded = solo.run(traffic);

    config.shardMode = ShardMode::DataParallel;
    config.maxShards = 4;
    ServingSimulator sharded(config, tinyMix());
    const ServingResult split = sharded.run(traffic);

    EXPECT_EQ(split.completed, split.offered);
    EXPECT_LT(split.p99, unsharded.p99);
}

TEST(ServingSim, ChaosChipDownRetriesEverythingToCompletion)
{
    auto &injector = fault::FaultInjector::instance();
    ASSERT_TRUE(injector
                    .configure("seed=99; serve.chip_down=0.2")
                    .ok());

    ServingConfig config;
    config.chips.assign(2, ChipSpec{"tpu-v2"});
    ServingSimulator sim(config, tinyMix());
    const ServingResult result = sim.run(lightTraffic(31));
    const std::string doc =
        sim::runRecordsJson({result.record}, sim::ReportMeta{});
    injector.disarm();

    EXPECT_GT(result.chipDownEvents, 0);
    EXPECT_EQ(result.offered, result.completed + result.shed);
    EXPECT_EQ(result.shed, 0); // outages delay, never drop
    EXPECT_TRUE(result.record.resilience.active);
    EXPECT_GE(result.record.resilience.faultsSeen,
              result.chipDownEvents);
    EXPECT_GE(result.record.resilience.retries, 1);
    // Armed injector stamps the v3 resilience block.
    EXPECT_NE(doc.find("\"resilience\""), std::string::npos);

    // Chaos runs are reproducible: same spec, same record.
    ASSERT_TRUE(injector
                    .configure("seed=99; serve.chip_down=0.2")
                    .ok());
    ServingSimulator again(config, tinyMix());
    const std::string doc2 = sim::runRecordsJson(
        {again.run(lightTraffic(31)).record}, sim::ReportMeta{});
    injector.disarm();
    EXPECT_EQ(doc, doc2);
}

TEST(ServingSim, PolicySweepReusesCostEvaluations)
{
    ServingConfig config;
    ServingSimulator sim(config, tinyMix());
    sim.run(lightTraffic(37));
    const Index cold = sim.costModel().evaluations();
    EXPECT_GT(cold, 0);
    sim.setScenario("again");
    sim.run(lightTraffic(37));
    EXPECT_EQ(sim.costModel().evaluations(), cold); // all memo hits
}

} // namespace
} // namespace cfconv::serve
