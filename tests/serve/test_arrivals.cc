/** @file Tests for the seeded arrival generators (serve/workload):
 *  determinism of every stream across thread counts, Poisson mean-rate
 *  agreement, bursty burst structure, diurnal modulation, and the
 *  class-mix weighting. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "serve/workload.h"

namespace cfconv::serve {
namespace {

bool
sameArrivals(const std::vector<Request> &a,
             const std::vector<Request> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].id != b[i].id || a[i].classIdx != b[i].classIdx ||
            a[i].arrivalSeconds != b[i].arrivalSeconds)
            return false;
    return true;
}

TEST(Arrivals, DeterministicPerSeedAcrossThreadCounts)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        TrafficSpec spec;
        spec.kind = kind;
        spec.ratePerSecond = 2000;
        spec.horizonSeconds = 0.5;
        spec.seed = 7;
        spec.classWeights = {0.5, 0.3, 0.2};

        parallel::setThreads(1);
        const auto serial = generateArrivals(spec);
        parallel::setThreads(4);
        const auto parallel4 = generateArrivals(spec);
        parallel::setThreads(0);
        const auto again = generateArrivals(spec);

        EXPECT_TRUE(sameArrivals(serial, parallel4))
            << arrivalKindName(kind);
        EXPECT_TRUE(sameArrivals(serial, again))
            << arrivalKindName(kind);
    }
}

TEST(Arrivals, DifferentSeedsDifferentStreams)
{
    TrafficSpec spec;
    spec.seed = 1;
    const auto a = generateArrivals(spec);
    spec.seed = 2;
    const auto b = generateArrivals(spec);
    EXPECT_FALSE(sameArrivals(a, b));
}

TEST(Arrivals, SortedWithDenseIdsInsideHorizon)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        TrafficSpec spec;
        spec.kind = kind;
        spec.ratePerSecond = 500;
        spec.horizonSeconds = 0.25;
        const auto arrivals = generateArrivals(spec);
        ASSERT_FALSE(arrivals.empty()) << arrivalKindName(kind);
        for (size_t i = 0; i < arrivals.size(); ++i) {
            EXPECT_EQ(arrivals[i].id, static_cast<Index>(i));
            EXPECT_GE(arrivals[i].arrivalSeconds, 0.0);
            EXPECT_LT(arrivals[i].arrivalSeconds, spec.horizonSeconds);
            if (i > 0) {
                EXPECT_GE(arrivals[i].arrivalSeconds,
                          arrivals[i - 1].arrivalSeconds);
            }
        }
    }
}

TEST(Arrivals, PoissonHitsTheMeanRate)
{
    TrafficSpec spec;
    spec.ratePerSecond = 1000;
    spec.horizonSeconds = 10.0; // expect ~10000 arrivals, sigma ~100
    spec.seed = 11;
    const auto n = static_cast<double>(generateArrivals(spec).size());
    const double expect = spec.ratePerSecond * spec.horizonSeconds;
    EXPECT_NEAR(n, expect, 5.0 * std::sqrt(expect));
}

TEST(Arrivals, BurstyMatchesLongRunRateAndActuallyBursts)
{
    TrafficSpec spec;
    spec.kind = ArrivalKind::Bursty;
    spec.ratePerSecond = 1000;
    spec.horizonSeconds = 10.0;
    spec.seed = 3;
    const auto arrivals = generateArrivals(spec);
    const double expect = spec.ratePerSecond * spec.horizonSeconds;
    // MMPP arrival counts are over-dispersed relative to Poisson; the
    // long-run mean still holds, just with a wider band.
    EXPECT_NEAR(static_cast<double>(arrivals.size()), expect,
                0.25 * expect);

    // Burstiness: the peak 10 ms window should far exceed the mean
    // 10 ms load (burstMultiplier is 8 by default).
    const double window = 10e-3;
    const double meanPerWindow =
        spec.ratePerSecond * window; // ~10 requests
    size_t lo = 0;
    size_t peak = 0;
    for (size_t hi = 0; hi < arrivals.size(); ++hi) {
        while (arrivals[hi].arrivalSeconds -
                   arrivals[lo].arrivalSeconds >
               window)
            ++lo;
        peak = std::max(peak, hi - lo + 1);
    }
    EXPECT_GT(static_cast<double>(peak), 3.0 * meanPerWindow);
}

TEST(Arrivals, DiurnalModulatesTheRate)
{
    TrafficSpec spec;
    spec.kind = ArrivalKind::Diurnal;
    spec.ratePerSecond = 2000;
    spec.horizonSeconds = 4.0;
    spec.diurnalPeriodSeconds = 1.0;
    spec.diurnalDepth = 0.8;
    spec.seed = 5;
    const auto arrivals = generateArrivals(spec);

    // Rate peaks in the first half of each period and troughs in the
    // second (sin modulation): count arrivals by half-period.
    double first = 0;
    double second = 0;
    for (const auto &req : arrivals) {
        const double phase = std::fmod(req.arrivalSeconds,
                                       spec.diurnalPeriodSeconds);
        (phase < 0.5 * spec.diurnalPeriodSeconds ? first : second) +=
            1.0;
    }
    EXPECT_GT(first, 1.5 * second);
}

TEST(Arrivals, ClassWeightsShapeTheMix)
{
    TrafficSpec spec;
    spec.ratePerSecond = 2000;
    spec.horizonSeconds = 5.0;
    spec.seed = 9;
    spec.classWeights = {3.0, 1.0};
    const auto arrivals = generateArrivals(spec);
    ASSERT_GT(arrivals.size(), 1000u);
    double class0 = 0;
    for (const auto &req : arrivals) {
        ASSERT_GE(req.classIdx, 0);
        ASSERT_LT(req.classIdx, 2);
        if (req.classIdx == 0)
            class0 += 1.0;
    }
    const double frac = class0 / static_cast<double>(arrivals.size());
    EXPECT_NEAR(frac, 0.75, 0.05);
}

TEST(Arrivals, ParseArrivalKindRoundTripsAndRejects)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        auto parsed = parseArrivalKind(arrivalKindName(kind));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), kind);
    }
    EXPECT_FALSE(parseArrivalKind("weekly").ok());
    EXPECT_FALSE(parseArrivalKind("").ok());
}

} // namespace
} // namespace cfconv::serve
