/** @file Parity and behaviour tests for the hoisted multi-chip path
 *  (serve/multi_chip + models:: split helpers): the deprecated
 *  TpuSim::runModelMultiCore wrapper must stay byte-identical to the
 *  generalized serve::runModelDataParallel, and both split helpers
 *  must obey their slicing rules. */

#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "serve/multi_chip.h"
#include "sim/accelerator.h"
#include "sim/model_runner.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::serve {
namespace {

TEST(SplitBatchAcrossCores, CeilDividesAndClampsToOne)
{
    const auto model = models::alexnet(8);
    const auto sliced = models::splitBatchAcrossCores(model, 3);
    ASSERT_EQ(sliced.layers.size(), model.layers.size());
    for (const auto &layer : sliced.layers)
        EXPECT_EQ(layer.params.batch, 3); // ceil(8/3)

    const auto tiny = models::splitBatchAcrossCores(models::alexnet(1),
                                                    16);
    for (const auto &layer : tiny.layers)
        EXPECT_EQ(layer.params.batch, 1); // never below one sample
}

TEST(SplitChannelsAcrossChips, SlicesOutputChannelsSkipsGrouped)
{
    const auto model = models::mobilenetv1(4); // has grouped layers
    const auto sliced = models::splitChannelsAcrossChips(model, 4);
    ASSERT_EQ(sliced.layers.size(), model.layers.size());
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const auto &before = model.layers[i];
        const auto &after = sliced.layers[i];
        EXPECT_EQ(after.params.batch, before.params.batch);
        if (before.groups != 1) {
            EXPECT_EQ(after.params.outChannels,
                      before.params.outChannels)
                << "grouped layer " << i << " must stay whole";
        } else {
            EXPECT_EQ(after.params.outChannels,
                      std::max<Index>(
                          1, divCeil(before.params.outChannels,
                                     static_cast<Index>(4))))
                << "layer " << i;
        }
    }
}

TEST(MultiChip, DataParallelMatchesDeprecatedTpuMultiCoreBitForBit)
{
    // The legacy TPU-only path is now a wrapper over the same slicing
    // rule; on an ungrouped model the two must agree exactly, layer
    // for layer (the contract that lets runModelMultiCore callers
    // migrate without golden churn).
    const auto model = models::alexnet(32);
    const tpusim::TpuSim raw((tpusim::TpuConfig::tpuV2()));

    for (Index chips : {1, 4, 8}) {
        const tpusim::TpuModelResult expect =
            raw.runModelMultiCore(model, chips);
        const auto accelerator = sim::makeAccelerator("tpu-v2");
        const sim::RunRecord got =
            runModelDataParallel(*accelerator, model, chips);

        EXPECT_DOUBLE_EQ(got.seconds, expect.seconds)
            << chips << " chips";
        EXPECT_DOUBLE_EQ(got.tflops, expect.tflops)
            << chips << " chips";
        ASSERT_EQ(got.layers.size(), expect.layers.size());
        for (size_t i = 0; i < got.layers.size(); ++i)
            EXPECT_DOUBLE_EQ(got.layers[i].seconds,
                             expect.layers[i].seconds)
                << chips << " chips, layer " << i;
        EXPECT_EQ(got.batch, 32); // reported at the full batch
    }
}

TEST(MultiChip, DataParallelScalesAndKeepsUsefulFlops)
{
    const auto model = models::resnet50(32);
    const auto accelerator = sim::makeAccelerator("tpu-v2");
    const auto one = runModelDataParallel(*accelerator, model, 1);
    const auto four = runModelDataParallel(*accelerator, model, 4);
    EXPECT_LT(four.seconds, one.seconds);
    // Full-batch FLOPs over slice time: the 4-chip board must beat
    // one chip on throughput.
    EXPECT_GT(four.tflops, one.tflops);
}

TEST(MultiChip, TensorParallelChargesSyncAndSpeedsUp)
{
    const auto model = models::alexnet(8);
    const auto accelerator = sim::makeAccelerator("tpu-v2");
    const auto whole = runModelDataParallel(*accelerator, model, 1);
    const auto tp = runModelTensorParallel(*accelerator, model, 4);
    EXPECT_LT(tp.seconds, whole.seconds);

    const auto synced =
        runModelTensorParallel(*accelerator, model, 4, 1e-3);
    EXPECT_DOUBLE_EQ(synced.seconds, tp.seconds + 1e-3);
    EXPECT_LT(synced.tflops, tp.tflops);
}

TEST(MultiChip, SingleChipIsTheIdentity)
{
    const auto model = models::alexnet(4);
    const auto accelerator = sim::makeAccelerator("tpu-v2");
    const auto direct =
        sim::ModelRunner(*accelerator).runModel(model);
    const auto one = runModelDataParallel(*accelerator, model, 1);
    EXPECT_DOUBLE_EQ(one.seconds, direct.seconds);
    EXPECT_DOUBLE_EQ(one.tflops, direct.tflops);
}

} // namespace
} // namespace cfconv::serve
