/** @file Tests for the dynamic batcher + admission control
 *  (serve/batcher) and the batch quantizer (serve/cost_model). */

#include <gtest/gtest.h>

#include <limits>

#include "serve/batcher.h"
#include "serve/cost_model.h"

namespace cfconv::serve {
namespace {

Request
at(Index id, double t, Index cls = 0)
{
    return Request{id, t, cls};
}

TEST(QuantizeBatch, RoundsUpToPreferredSizes)
{
    EXPECT_EQ(quantizeBatch(1), 1);
    EXPECT_EQ(quantizeBatch(2), 2);
    EXPECT_EQ(quantizeBatch(3), 4);
    EXPECT_EQ(quantizeBatch(5), 8);
    EXPECT_EQ(quantizeBatch(9), 12);
    EXPECT_EQ(quantizeBatch(13), 16);
    EXPECT_EQ(quantizeBatch(17), 24);
    EXPECT_EQ(quantizeBatch(33), 48);
    EXPECT_EQ(quantizeBatch(49), 64);
    EXPECT_EQ(quantizeBatch(64), 64);
    EXPECT_EQ(quantizeBatch(1000), kMaxServeBatch);
}

TEST(BatchQueue, LaunchesWhenFull)
{
    BatchQueue queue(1, BatchPolicy{4, 1.0}, {});
    for (Index i = 0; i < 3; ++i) {
        EXPECT_TRUE(queue.offer(at(i, 0.0), 0.0));
        EXPECT_EQ(queue.launchableClass(0.0), -1) << i;
    }
    EXPECT_TRUE(queue.offer(at(3, 0.0), 0.0));
    EXPECT_EQ(queue.launchableClass(0.0), 0);
    const auto batch = queue.pop(0, 4);
    ASSERT_EQ(batch.size(), 4u);
    EXPECT_EQ(batch.front().id, 0); // FIFO
    EXPECT_EQ(queue.depth(0), 0);
}

TEST(BatchQueue, LaunchesPartialBatchAtMaxWait)
{
    BatchQueue queue(1, BatchPolicy{8, 2e-3}, {});
    EXPECT_TRUE(queue.offer(at(0, 1.0), 0.0));
    EXPECT_EQ(queue.launchableClass(1.0), -1);
    EXPECT_EQ(queue.launchableClass(1.0 + 1e-3), -1);
    EXPECT_DOUBLE_EQ(queue.nextDeadline(), 1.0 + 2e-3);
    EXPECT_EQ(queue.launchableClass(1.0 + 2e-3), 0);
}

TEST(BatchQueue, ZeroWaitMeansImmediateLaunch)
{
    BatchQueue queue(1, BatchPolicy{8, 0.0}, {});
    EXPECT_TRUE(queue.offer(at(0, 0.5), 0.0));
    EXPECT_EQ(queue.launchableClass(0.5), 0);
}

TEST(BatchQueue, TiesBreakByOldestArrivalThenClassIndex)
{
    BatchQueue queue(3, BatchPolicy{1, 10.0}, {});
    // maxBatch=1: every queued request is launchable immediately.
    EXPECT_TRUE(queue.offer(at(0, 2.0, 2), 0.0));
    EXPECT_TRUE(queue.offer(at(1, 1.0, 1), 0.0));
    EXPECT_EQ(queue.launchableClass(2.0), 1); // older arrival wins
    EXPECT_TRUE(queue.offer(at(2, 1.0, 0), 0.0));
    EXPECT_EQ(queue.launchableClass(2.0), 0); // equal age: low index
}

TEST(BatchQueue, ShedsOnFullQueue)
{
    AdmissionPolicy admission;
    admission.maxQueuePerClass = 2;
    BatchQueue queue(1, BatchPolicy{8, 1.0}, admission);
    EXPECT_TRUE(queue.offer(at(0, 0.0), 0.0));
    EXPECT_TRUE(queue.offer(at(1, 0.0), 0.0));
    EXPECT_FALSE(queue.offer(at(2, 0.0), 0.0));
    EXPECT_EQ(queue.shedCount(0), 1);
    EXPECT_EQ(queue.depth(0), 2);
}

TEST(BatchQueue, ShedsOnEstimatedDelay)
{
    AdmissionPolicy admission;
    admission.maxEstimatedDelaySeconds = 10e-3;
    BatchQueue queue(1, BatchPolicy{8, 1.0}, admission);
    EXPECT_TRUE(queue.offer(at(0, 0.0), 5e-3));
    EXPECT_FALSE(queue.offer(at(1, 0.0), 20e-3));
    EXPECT_EQ(queue.shedCount(0), 1);
}

TEST(BatchQueue, UnboundedPolicyAdmitsEverything)
{
    BatchQueue queue(1, BatchPolicy{2, 1.0}, {});
    for (Index i = 0; i < 100; ++i)
        EXPECT_TRUE(queue.offer(at(i, 0.0), 1e9));
    EXPECT_EQ(queue.depth(0), 100);
    EXPECT_EQ(queue.shedCount(0), 0);
}

TEST(BatchQueue, RequeueFrontPreservesFifoOrder)
{
    BatchQueue queue(1, BatchPolicy{2, 1.0}, {});
    for (Index i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.offer(at(i, static_cast<double>(i)), 0.0));
    auto batch = queue.pop(0, 2);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].id, 0);
    queue.requeueFront(0, batch);
    EXPECT_EQ(queue.depth(0), 4);
    const auto again = queue.pop(0, 4);
    ASSERT_EQ(again.size(), 4u);
    for (Index i = 0; i < 4; ++i)
        EXPECT_EQ(again[static_cast<size_t>(i)].id, i);
}

TEST(BatchQueue, NextDeadlineIsInfiniteWhenEmpty)
{
    BatchQueue queue(2, BatchPolicy{4, 1e-3}, {});
    EXPECT_TRUE(queue.nextDeadline() >
                1e30); // +inf: no queued request
    EXPECT_EQ(queue.launchableClass(100.0), -1);
}

TEST(BatchQueue, PriorityTierBeatsOlderArrival)
{
    // maxBatch=1: everything queued is launchable. Class 1 sits in
    // the more important tier 0, so it launches ahead of the older
    // tier-1 arrival.
    BatchQueue queue(2, BatchPolicy{1, 10.0}, {}, {1, 0}, {});
    EXPECT_TRUE(queue.offer(at(0, 1.0, 0), 0.0));
    EXPECT_TRUE(queue.offer(at(1, 2.0, 1), 0.0));
    EXPECT_EQ(queue.launchableClass(2.0), 1);
    queue.pop(1, 1);
    EXPECT_EQ(queue.launchableClass(2.0), 0);
}

TEST(BatchQueue, EarliestDeadlineBreaksTiesWithinATier)
{
    // Same tier, different SLOs: the newer class-1 arrival has the
    // earlier deadline (1.05 + 0.01 < 1.00 + 0.10) and goes first.
    BatchQueue queue(2, BatchPolicy{1, 10.0}, {}, {0, 0},
                     {0.10, 0.01});
    EXPECT_TRUE(queue.offer(at(0, 1.00, 0), 0.0));
    EXPECT_TRUE(queue.offer(at(1, 1.05, 1), 0.0));
    EXPECT_EQ(queue.launchableClass(1.05), 1);
}

TEST(BatchQueue, BrownoutShedsOnlyTheFlooredTiersAtArrival)
{
    BatchQueue queue(2, BatchPolicy{4, 1.0}, {}, {0, 2}, {});
    queue.setBrownoutMinPriority(2);
    EXPECT_TRUE(queue.offer(at(0, 0.0, 0), 0.0));
    EXPECT_FALSE(queue.offer(at(1, 0.0, 1), 0.0));
    EXPECT_EQ(queue.shedCount(1), 1);
    EXPECT_EQ(queue.brownoutShedCount(1), 1);
    EXPECT_EQ(queue.brownoutShedCount(0), 0);
    // Lifting the floor re-admits the class.
    queue.setBrownoutMinPriority(std::numeric_limits<Index>::max());
    EXPECT_TRUE(queue.offer(at(2, 0.1, 1), 0.0));
}

TEST(BatchQueue, MaxBatchOverrideShrinksTheFullTestAndClamps)
{
    BatchQueue queue(1, BatchPolicy{8, 10.0}, {});
    for (Index i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.offer(at(i, 0.0), 0.0));
    EXPECT_EQ(queue.launchableClass(0.0), -1); // 4 < 8: not full
    queue.setMaxBatchOverride(4);
    EXPECT_EQ(queue.effectiveMaxBatch(), 4);
    EXPECT_EQ(queue.launchableClass(0.0), 0); // full at the override
    // The override can only shrink, never grow past the policy.
    queue.setMaxBatchOverride(64);
    EXPECT_EQ(queue.effectiveMaxBatch(), 8);
    queue.setMaxBatchOverride(0);
    EXPECT_EQ(queue.effectiveMaxBatch(), 8);
}

} // namespace
} // namespace cfconv::serve
