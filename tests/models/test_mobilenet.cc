/** @file Tests for MobileNetV1 and grouped layer specs in the zoo. */

#include <gtest/gtest.h>

#include "gpusim/gpu_sim.h"
#include "models/model_zoo.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::models {
namespace {

TEST(MobileNet, LayerStructure)
{
    const ModelSpec m = mobilenetv1(1);
    // 1 stem + 13 dw + 13 pw blocks = 27 layer specs (with counts:
    // 1 + 2*9 entries, instances 1 + 13 + 13 = 27).
    EXPECT_EQ(m.layerInstances(), 27);
    // Depthwise layers carry groups = C_I; pointwise carry groups = 1.
    Index dw = 0, pw = 0;
    for (const auto &l : m.layers) {
        if (l.groups > 1) {
            EXPECT_EQ(l.groups, l.params.inChannels) << l.name;
            EXPECT_EQ(l.params.kernelH, 3) << l.name;
            ++dw;
        } else if (l.params.kernelH == 1) {
            ++pw;
        }
    }
    EXPECT_GT(dw, 0);
    EXPECT_GT(pw, 0);
}

TEST(MobileNet, FlopsMatchPublishedScale)
{
    // MobileNetV1 1.0x: ~1.1 GFLOPs (2 flops/MAC) of convolution at
    // batch 1.
    const double gflops =
        static_cast<double>(mobilenetv1(1).totalFlops()) / 1e9;
    EXPECT_NEAR(gflops, 1.1, 0.25);
}

TEST(MobileNet, GroupedFlopsAreSliceScaled)
{
    const ModelSpec m = mobilenetv1(1);
    for (const auto &l : m.layers) {
        if (l.groups > 1) {
            EXPECT_EQ(l.flops(), l.sliceParams().flops() *
                                     static_cast<Flops>(l.groups))
                << l.name;
        } else {
            EXPECT_EQ(l.flops(), l.params.flops());
        }
    }
}

TEST(MobileNet, DimensionsChainThroughTheNetwork)
{
    const ModelSpec m = mobilenetv1(1);
    for (size_t i = 1; i < m.layers.size(); ++i) {
        const auto &prev = m.layers[i - 1].params;
        const auto &cur = m.layers[i].params;
        EXPECT_EQ(cur.inChannels, prev.outChannels)
            << m.layers[i].name;
        EXPECT_EQ(cur.inH, prev.outH()) << m.layers[i].name;
    }
}

TEST(MobileNet, RunsOnBothSimulators)
{
    const ModelSpec m = mobilenetv1(8);
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));
    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));
    const auto tr = tpu.runModel(m);
    const auto gr = gpu.runModel(m);
    EXPECT_GT(tr.seconds, 0.0);
    EXPECT_GT(gr.seconds, 0.0);
    // Depthwise layers wreck systolic occupancy: effective TFLOPS is a
    // small fraction of peak -- the documented occupancy cliff.
    EXPECT_LT(tr.tflops, 0.25 * tpu.config().peakTflops());
}

TEST(MobileNet, DepthwiseDominatesTpuTimeDespiteTinyFlops)
{
    const ModelSpec m = mobilenetv1(8);
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));
    double dw_seconds = 0.0, pw_seconds = 0.0;
    Flops dw_flops = 0, pw_flops = 0;
    for (const auto &l : m.layers) {
        const auto r = tpu.runGroupedConv(l.params, l.groups);
        const double secs =
            r.seconds * static_cast<double>(l.count);
        if (l.groups > 1) {
            dw_seconds += secs;
            dw_flops += l.flops() * static_cast<Flops>(l.count);
        } else {
            pw_seconds += secs;
            pw_flops += l.flops() * static_cast<Flops>(l.count);
        }
    }
    // Depthwise is ~3% of the FLOPs but the majority of the time.
    EXPECT_LT(static_cast<double>(dw_flops),
              0.15 * static_cast<double>(pw_flops));
    EXPECT_GT(dw_seconds, pw_seconds);
}

} // namespace
} // namespace cfconv::models
