/** @file Sanity tests for the CNN layer-shape zoo. */

#include <gtest/gtest.h>

#include "models/model_zoo.h"

namespace cfconv::models {
namespace {

TEST(ModelZoo, AllSevenModelsPresent)
{
    const auto zoo = allModels(1);
    ASSERT_EQ(zoo.size(), 7u);
    EXPECT_EQ(zoo[0].name, "AlexNet");
    EXPECT_EQ(zoo[1].name, "DenseNet");
    EXPECT_EQ(zoo[2].name, "GoogleNet");
    EXPECT_EQ(zoo[3].name, "ResNet");
    EXPECT_EQ(zoo[4].name, "VGG16");
    EXPECT_EQ(zoo[5].name, "YOLO");
    EXPECT_EQ(zoo[6].name, "ZFNet");
}

TEST(ModelZoo, EveryLayerValidates)
{
    for (const auto &model : allModels(8)) {
        for (const auto &layer : model.layers) {
            EXPECT_NO_THROW(layer.params.validate())
                << model.name << "/" << layer.name;
            EXPECT_GE(layer.count, 1);
        }
    }
}

TEST(ModelZoo, KnownLayerCounts)
{
    EXPECT_EQ(alexnet(1).layerInstances(), 5);
    EXPECT_EQ(zfnet(1).layerInstances(), 5);
    EXPECT_EQ(vgg16(1).layerInstances(), 13);
    // ResNet-50: 1 stem + 4 stages x (4 first-block convs) +
    // (3+4+6+3 - 4) x 3 remaining-block convs = 1 + 16 + 36 = 53.
    EXPECT_EQ(resnet50(1).layerInstances(), 53);
    // GoogleNet: 3 stem + 9 inceptions x 6 convs = 57.
    EXPECT_EQ(googlenet(1).layerInstances(), 57);
    // DenseNet-121: 1 stem + 58 dense layers x 2 + 3 transitions = 120.
    EXPECT_EQ(densenet121(1).layerInstances(), 120);
    EXPECT_EQ(yolov2(1).layerInstances(), 23);
}

TEST(ModelZoo, VggFlopsMatchPublishedScale)
{
    // VGG16 convolutions: ~30.7 GFLOPs (2 flops/MAC) at batch 1.
    const double gflops =
        static_cast<double>(vgg16(1).totalFlops()) / 1e9;
    EXPECT_NEAR(gflops, 30.7, 1.5);
}

TEST(ModelZoo, ResNetFlopsMatchPublishedScale)
{
    // ResNet-50 convolutions: ~7.7 GFLOPs at batch 1 (conv-only, with
    // projection shortcuts).
    const double gflops =
        static_cast<double>(resnet50(1).totalFlops()) / 1e9;
    EXPECT_NEAR(gflops, 7.7, 0.8);
}

TEST(ModelZoo, BatchScalesLinearly)
{
    const Flops f1 = resnet50(1).totalFlops();
    const Flops f8 = resnet50(8).totalFlops();
    EXPECT_EQ(f8, 8 * f1);
}

TEST(ModelZoo, LoweredBytesExceedInputBytes)
{
    // Table I: the lowered matrix is always larger than the IFMaps.
    for (const auto &model : allModels(1)) {
        EXPECT_GT(model.totalLoweredBytes(), model.totalInputBytes())
            << model.name;
    }
}

TEST(ModelZoo, DenseNetChannelGrowthIsCorrect)
{
    const ModelSpec m = densenet121(1);
    // The last dense layer of block 4 takes 64+ (6+12+24)/... channel
    // bookkeeping: final 1x1 input channels = 512 + 15*32 = 992.
    bool found = false;
    for (const auto &l : m.layers) {
        if (l.name == "dense4.16.1x1") {
            EXPECT_EQ(l.params.inChannels, 992);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(RepresentativeLayers, MatchPaperNamingScheme)
{
    const auto layers = resnetRepresentativeLayers(8);
    ASSERT_EQ(layers.size(), 6u);
    EXPECT_EQ(layers[0].name, "56,64,64,3");
    EXPECT_EQ(layers[0].params.inH, 56);
    EXPECT_EQ(layers[0].params.inChannels, 64);
    EXPECT_EQ(layers[0].params.kernelH, 3);
}

TEST(StridedLayers, AllHaveStrideAboveOne)
{
    const auto layers = stridedLayers(8);
    EXPECT_GT(layers.size(), 5u);
    for (const auto &l : layers)
        EXPECT_GT(l.params.strideH, 1) << l.name;
}

} // namespace
} // namespace cfconv::models
