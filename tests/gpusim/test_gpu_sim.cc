/** @file Behavioural tests for the GPU tensor-core simulator. */

#include <gtest/gtest.h>

#include "common/logging.h"

#include "gpusim/gpu_sim.h"
#include "models/model_zoo.h"

namespace cfconv::gpusim {
namespace {

using tensor::makeConv;

GpuSim
sim()
{
    return GpuSim(GpuConfig::v100());
}

TEST(GpuConfig, V100Parameters)
{
    const GpuConfig c = GpuConfig::v100();
    EXPECT_NEAR(c.peakTflops(), 125.0, 5.0);
    EXPECT_NEAR(c.dram.peakGBps(), 900.0, 15.0);
}

TEST(GpuSim, LargeGemmApproachesPeak)
{
    const GpuKernelResult r = sim().runGemm(16384, 4096, 4096);
    EXPECT_GT(r.tflops, 0.7 * GpuConfig::v100().peakTflops());
}

TEST(GpuSim, TinyGemmDominatedByOverhead)
{
    const GpuKernelResult r = sim().runGemm(64, 64, 64);
    EXPECT_LT(r.tflops, 2.0);
}

TEST(GpuSim, VendorTuningIsSlightlyFaster)
{
    GpuSim s = sim();
    const double ours = s.runGemm(8192, 2048, 2048, false).seconds;
    const double vendor = s.runGemm(8192, 2048, 2048, true).seconds;
    EXPECT_LT(vendor, ours);
    EXPECT_GT(vendor, 0.95 * ours);
}

TEST(GpuSim, ChannelFirstDegradesLessWithStrideThanChannelLast)
{
    // On the GPU, stride 2 costs everyone some occupancy (fewer output
    // rows), but the channel-first kernel keeps much more of its
    // stride-1 throughput than the channel-last one (Figs 4a/18a).
    GpuSim s = sim();
    GpuRunOptions cf, cl;
    cf.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    cl.algorithm = GpuAlgorithm::ImplicitChannelLast;
    const ConvParams p1 = makeConv(64, 128, 28, 128, 3, 1, 1);
    const ConvParams p2 = makeConv(64, 128, 28, 128, 3, 2, 1);
    const double cf_ratio =
        s.runConv(p2, cf).tflops / s.runConv(p1, cf).tflops;
    const double cl_ratio =
        s.runConv(p2, cl).tflops / s.runConv(p1, cl).tflops;
    EXPECT_GT(cf_ratio, cl_ratio + 0.05);
    EXPECT_GT(cf_ratio, 0.6);
}

TEST(GpuSim, ChannelLastDegradesWithStride)
{
    // Fig 4a: ~30% drop at stride 2, ~60% at stride 4.
    GpuSim s = sim();
    GpuRunOptions cl;
    cl.algorithm = GpuAlgorithm::ImplicitChannelLast;
    const double t1 =
        s.runConv(makeConv(64, 128, 28, 128, 3, 1, 1), cl).tflops;
    const double t2 =
        s.runConv(makeConv(64, 128, 28, 128, 3, 2, 1), cl).tflops;
    const double t4 =
        s.runConv(makeConv(64, 128, 28, 128, 3, 4, 1), cl).tflops;
    EXPECT_LT(t2, 0.85 * t1);
    EXPECT_LT(t4, 0.6 * t1);
}

TEST(GpuSim, ChannelFirstBeatsChannelLastOnStridedConvs)
{
    // Fig 18a: our method wins on stride > 1 layers.
    GpuSim s = sim();
    GpuRunOptions cf, cl;
    cf.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    cl.algorithm = GpuAlgorithm::ImplicitChannelLast;
    cl.vendorTuned = true;
    const ConvParams p = makeConv(8, 64, 112, 128, 3, 2, 1);
    EXPECT_GT(s.runConv(p, cf).tflops, s.runConv(p, cl).tflops);
}

TEST(GpuSim, CompetitiveWithVendorAtStride1)
{
    // Fig 17: within a few percent of the cuDNN-like kernel at batch 8.
    GpuSim s = sim();
    GpuRunOptions cf, cl;
    cf.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    cl.algorithm = GpuAlgorithm::ImplicitChannelLast;
    cl.vendorTuned = true;
    const ConvParams p = makeConv(8, 256, 28, 256, 3, 1, 1);
    const double ours = s.runConv(p, cf).seconds;
    const double vendor = s.runConv(p, cl).seconds;
    EXPECT_NEAR(ours / vendor, 1.0, 0.15);
}

TEST(GpuSim, ExplicitPaysTransformOverhead)
{
    // Fig 2a: explicit = implicit-like GEMM + transform time.
    GpuSim s = sim();
    GpuRunOptions ex, cl;
    ex.algorithm = GpuAlgorithm::ExplicitIm2col;
    cl.algorithm = GpuAlgorithm::ImplicitChannelLast;
    // A compute-heavy layer (large C_O), where the paper observes the
    // explicit method's GEMM time matching the implicit kernel.
    const ConvParams p = makeConv(64, 256, 28, 256, 3, 1, 1);
    const GpuKernelResult e = s.runConv(p, ex);
    const GpuKernelResult i = s.runConv(p, cl);
    EXPECT_GT(e.seconds, i.seconds);
    EXPECT_GT(e.transformSeconds, 0.0);
    EXPECT_NEAR(e.seconds - e.transformSeconds, i.seconds,
                0.5 * i.seconds);
}

TEST(GpuSim, TransformTimeScalesWithLoweredSize)
{
    GpuSim s = sim();
    const ConvParams small = makeConv(8, 64, 28, 64, 3, 1, 1);
    const ConvParams large = makeConv(8, 64, 56, 64, 3, 1, 1);
    EXPECT_GT(s.explicitTransformSeconds(large),
              2.0 * s.explicitTransformSeconds(small));
}

TEST(GpuSim, InterTileReuseHelpsMemoryBoundStridedLayers)
{
    // Fig 18b: reordering recovers on-chip reuse for strided layers.
    GpuSim s = sim();
    GpuRunOptions with_reuse, without;
    with_reuse.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    with_reuse.interTileReuse = true;
    without.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    without.interTileReuse = false;
    const ConvParams p = makeConv(8, 32, 112, 64, 3, 2, 1);
    const double fast = s.runConv(p, with_reuse).seconds;
    const double slow = s.runConv(p, without).seconds;
    EXPECT_LT(fast, slow);
}

TEST(GpuSim, GemmOnlyIsUpperBoundForImplicit)
{
    GpuSim s = sim();
    GpuRunOptions gemm, cl;
    gemm.algorithm = GpuAlgorithm::GemmOnly;
    cl.algorithm = GpuAlgorithm::ImplicitChannelLast;
    for (Index stride : {1, 2, 4}) {
        const ConvParams p = makeConv(64, 128, 28, 128, 3, stride, 1);
        EXPECT_GE(1.05 * s.runConv(p, gemm).tflops,
                  s.runConv(p, cl).tflops)
            << "stride " << stride;
    }
}

TEST(GpuSim, RunModelAggregates)
{
    GpuSim s = sim();
    const models::ModelSpec m = models::alexnet(8);
    const GpuModelResult r = s.runModel(m);
    EXPECT_EQ(r.layers.size(), m.layers.size());
    EXPECT_GT(r.seconds, 0.0);
}

TEST(GpuSim, RejectsBadInput)
{
    EXPECT_THROW(sim().runGemm(0, 1, 1), FatalError);
}

} // namespace
} // namespace cfconv::gpusim
