/** @file Tests for the functional block-level channel-first kernel. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "gpusim/block_kernel.h"
#include "tensor/conv_ref.h"

namespace cfconv::gpusim {
namespace {

using tensor::makeConv;
using tensor::Tensor;

struct BlockCase
{
    Index batch, ci, hw, co, k, s, p;
    Index tm, tn, kc;
    im2col::TileOrder order;
};

class BlockKernel : public ::testing::TestWithParam<BlockCase>
{
};

TEST_P(BlockKernel, EqualsDirectConvWithoutAtomics)
{
    const BlockCase c = GetParam();
    const auto p = makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p);
    Tensor input = tensor::makeInput(p);
    Tensor filter = tensor::makeFilter(p);
    input.fillRandom(161);
    filter.fillRandom(163);

    BlockKernelConfig cfg;
    cfg.tileM = c.tm;
    cfg.tileN = c.tn;
    cfg.chunkK = c.kc;
    cfg.order = c.order;
    BlockKernelStats stats;
    const Tensor out =
        convBlockChannelFirst(p, input, filter, cfg, &stats);
    const Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(out.maxAbsDiff(ref), 1e-3f) << p.toString();

    // Each OFMap element written exactly once (checked internally via
    // assertion) and accounted for here.
    EXPECT_EQ(stats.outputWrites, p.outputElems());
    EXPECT_EQ(stats.threadBlocks,
              divCeil(p.gemmM(), c.tm) * divCeil(p.gemmN(), c.tn));
    EXPECT_GT(stats.stagingSteps, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockKernel,
    ::testing::Values(
        BlockCase{1, 4, 6, 4, 3, 1, 1, 8, 4, 4,
                  im2col::TileOrder::Naive},
        BlockCase{2, 3, 7, 5, 3, 2, 1, 16, 8, 2,
                  im2col::TileOrder::ReuseGreedy},
        BlockCase{1, 8, 5, 8, 3, 1, 0, 4, 8, 8,
                  im2col::TileOrder::ReuseGreedy},
        BlockCase{2, 2, 9, 3, 5, 2, 2, 32, 4, 2,
                  im2col::TileOrder::Naive},
        BlockCase{1, 6, 8, 6, 1, 1, 0, 64, 64, 3,
                  im2col::TileOrder::Naive},
        BlockCase{1, 3, 10, 4, 3, 3, 1, 8, 8, 3,
                  im2col::TileOrder::ReuseGreedy}));

TEST(BlockKernel, TileOrderDoesNotChangeResults)
{
    const auto p = makeConv(2, 4, 8, 4, 3, 2, 1);
    Tensor input = tensor::makeInput(p);
    Tensor filter = tensor::makeFilter(p);
    input.fillRandom(167);
    filter.fillRandom(173);
    BlockKernelConfig naive, greedy;
    naive.order = im2col::TileOrder::Naive;
    greedy.order = im2col::TileOrder::ReuseGreedy;
    const Tensor a = convBlockChannelFirst(p, input, filter, naive);
    const Tensor b = convBlockChannelFirst(p, input, filter, greedy);
    EXPECT_LT(a.maxAbsDiff(b), 1e-4f);
}

TEST(BlockKernel, StagingRespectsSharedMemoryBound)
{
    const auto p = makeConv(1, 8, 6, 8, 3, 1, 1);
    Tensor input = tensor::makeInput(p);
    Tensor filter = tensor::makeFilter(p);
    BlockKernelConfig cfg;
    cfg.tileM = 16;
    cfg.tileN = 8;
    cfg.chunkK = 8;
    BlockKernelStats stats;
    convBlockChannelFirst(p, input, filter, cfg, &stats);
    EXPECT_LE(stats.peakStagingBytes, cfg.sharedMemBytes);
    // (tileM*chunkK + chunkK*tileN) * 2 bytes.
    EXPECT_EQ(stats.peakStagingBytes,
              static_cast<Bytes>((16 * 8 + 8 * 8) * 2));
}

TEST(BlockKernel, OversizedStagingIsFatal)
{
    const auto p = makeConv(1, 64, 8, 64, 3, 1, 1);
    Tensor input = tensor::makeInput(p);
    Tensor filter = tensor::makeFilter(p);
    BlockKernelConfig cfg;
    cfg.tileM = 64;
    cfg.tileN = 64;
    cfg.chunkK = 64;
    cfg.sharedMemBytes = 1024; // absurdly small
    EXPECT_THROW(convBlockChannelFirst(p, input, filter, cfg),
                 FatalError);
}

TEST(BlockKernel, RejectsBadConfig)
{
    const auto p = makeConv(1, 2, 5, 2, 3);
    Tensor input = tensor::makeInput(p);
    Tensor filter = tensor::makeFilter(p);
    BlockKernelConfig cfg;
    cfg.tileM = 0;
    EXPECT_THROW(convBlockChannelFirst(p, input, filter, cfg),
                 FatalError);
}

} // namespace
} // namespace cfconv::gpusim
