/** @file Parameterized property sweeps over the GPU simulator. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "gpusim/gpu_sim.h"

namespace cfconv::gpusim {
namespace {

using tensor::makeConv;

class GpuStrideSweep : public ::testing::TestWithParam<Index>
{
};

TEST_P(GpuStrideSweep, ChannelFirstNeverSlowerThanChannelLast)
{
    // Fig 18a as a property: for every stride, our kernel is at least
    // as fast as the (equal-efficiency) channel-last one.
    const Index stride = GetParam();
    GpuSim sim((GpuConfig::v100()));
    GpuRunOptions cf, cl;
    cf.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    cl.algorithm = GpuAlgorithm::ImplicitChannelLast;
    const auto p = makeConv(8, 64, 56, 128, 3, stride, 1);
    EXPECT_LE(sim.runConv(p, cf).seconds,
              sim.runConv(p, cl).seconds * 1.001)
        << "stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, GpuStrideSweep,
                         ::testing::Values(1, 2, 3, 4));

class GpuBatchSweep : public ::testing::TestWithParam<Index>
{
};

TEST_P(GpuBatchSweep, SecondsMonotonicInBatch)
{
    const Index batch = GetParam();
    GpuSim sim((GpuConfig::v100()));
    const double small =
        sim.runConv(makeConv(batch, 64, 28, 64, 3, 1, 1)).seconds;
    const double big =
        sim.runConv(makeConv(2 * batch, 64, 28, 64, 3, 1, 1)).seconds;
    EXPECT_GE(big, small) << "batch " << batch;
}

INSTANTIATE_TEST_SUITE_P(Batches, GpuBatchSweep,
                         ::testing::Values(1, 4, 16, 64));

TEST(GpuSweeps, ThroughputImprovesWithBatchUntilSaturation)
{
    // Small batches underfill the machine; throughput should rise
    // toward a plateau.
    GpuSim sim((GpuConfig::v100()));
    const double t1 =
        sim.runConv(makeConv(1, 128, 28, 128, 3, 1, 1)).tflops;
    const double t64 =
        sim.runConv(makeConv(64, 128, 28, 128, 3, 1, 1)).tflops;
    EXPECT_GT(t64, 2.0 * t1);
}

TEST(GpuSweeps, ReuseNeverHurts)
{
    GpuSim sim((GpuConfig::v100()));
    GpuRunOptions with_reuse, without;
    with_reuse.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    without.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    without.interTileReuse = false;
    for (Index stride : {1L, 2L, 3L}) {
        const auto p = makeConv(8, 32, 112, 64, 3, stride, 1);
        EXPECT_LE(sim.runConv(p, with_reuse).seconds,
                  sim.runConv(p, without).seconds * 1.001)
            << "stride " << stride;
    }
}

TEST(GpuSweeps, DramBytesScaleWithUniqueFootprint)
{
    GpuSim sim((GpuConfig::v100()));
    GpuRunOptions cf;
    cf.algorithm = GpuAlgorithm::ImplicitChannelFirst;
    const auto small = sim.runConv(makeConv(8, 64, 28, 64, 3, 1, 1),
                                   cf);
    const auto big = sim.runConv(makeConv(8, 64, 56, 64, 3, 1, 1),
                                 cf);
    // 4x the pixels -> roughly 4x the unique traffic.
    const double ratio = static_cast<double>(big.dramBytes) /
                         static_cast<double>(small.dramBytes);
    EXPECT_NEAR(ratio, 4.0, 1.0);
}

TEST(GpuSweeps, ExplicitWorkspaceDominatesDramBytes)
{
    GpuSim sim((GpuConfig::v100()));
    GpuRunOptions ex;
    ex.algorithm = GpuAlgorithm::ExplicitIm2col;
    const auto p = makeConv(8, 64, 56, 64, 3, 1, 1);
    const auto r = sim.runConv(p, ex);
    EXPECT_GT(r.dramBytes, 2 * p.loweredBytes());
}

TEST(GpuSweeps, HigherClockIsFasterForComputeBound)
{
    const auto p = makeConv(64, 256, 28, 256, 3, 1, 1);
    GpuConfig slow = GpuConfig::v100();
    slow.clockGhz = 1.0;
    GpuConfig fast = GpuConfig::v100();
    GpuRunOptions cf;
    EXPECT_LT(GpuSim(fast).runConv(p, cf).seconds,
              GpuSim(slow).runConv(p, cf).seconds);
}

TEST(GpuSweeps, GemmTflopsMonotonicInProblemSize)
{
    GpuSim sim((GpuConfig::v100()));
    double prev = 0.0;
    for (Index dim : {256L, 1024L, 4096L}) {
        const double t = sim.runGemm(dim, dim, dim).tflops;
        EXPECT_GT(t, prev) << "dim " << dim;
        prev = t;
    }
}

} // namespace
} // namespace cfconv::gpusim
