/** @file Tests for the typed trace reader (analyze/trace_model):
 *  well-formed documents come back as structured events with track
 *  names and both arg kinds, malformed documents come back as
 *  INVALID_ARGUMENT naming the offending event — a truncated or
 *  hand-edited trace must be rejected, never crash the analyzer. */

#include <gtest/gtest.h>

#include "analyze/trace_model.h"

namespace cfconv::analyze {
namespace {

constexpr const char kMinimalTrace[] = R"({
"traceEvents": [
  {"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
   "args": {"name": "simulated cycles"}},
  {"name": "thread_name", "ph": "M", "pid": 2, "tid": 7,
   "args": {"name": "conv 3x3 64->64 M=12544 fill"}},
  {"name": "fill", "cat": "sim", "ph": "X", "pid": 2, "tid": 7,
   "ts": 10.0, "dur": 5.0, "args": {"unit": 0}},
  {"name": "runModel AlexNet on tpu-v2", "cat": "runner", "ph": "X",
   "pid": 1, "tid": 1, "ts": 0.0, "dur": 100.0,
   "args": {"seconds": 0.5, "algorithm": "indirect"}},
  {"name": "layer_cache.hit", "cat": "cache", "ph": "i", "pid": 1,
   "tid": 1, "ts": 50.0},
  {"name": "queue_depth", "cat": "pool", "ph": "C", "pid": 1,
   "tid": 0, "ts": 60.0, "args": {"value": 3}}
]})";

TEST(TraceModel, ParsesEventsTracksAndArgs)
{
    const auto parsed = parseTrace(kMinimalTrace);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const TraceDocument &doc = parsed.value();

    // Metadata became names, not events.
    ASSERT_EQ(doc.events.size(), 4u);
    EXPECT_EQ(doc.processNames.at(kSimPid), "simulated cycles");
    EXPECT_EQ(doc.simTrackName(7), "conv 3x3 64->64 M=12544 fill");
    EXPECT_EQ(doc.simTrackName(99), "");

    const TraceEvent &fill = doc.events[0];
    EXPECT_EQ(fill.phase, TraceEvent::Phase::Complete);
    EXPECT_TRUE(fill.onSimClock());
    EXPECT_EQ(fill.ts, 10.0);
    EXPECT_EQ(fill.end(), 15.0);
    EXPECT_EQ(fill.args.at("unit"), 0.0);

    // Numeric and string args split into their own maps.
    const TraceEvent &model = doc.events[1];
    EXPECT_EQ(model.category, "runner");
    EXPECT_EQ(model.args.at("seconds"), 0.5);
    EXPECT_EQ(model.textArgs.at("algorithm"), "indirect");

    const TraceEvent &hit = doc.events[2];
    EXPECT_EQ(hit.phase, TraceEvent::Phase::Instant);
    const TraceEvent &counter = doc.events[3];
    EXPECT_EQ(counter.phase, TraceEvent::Phase::Counter);
    EXPECT_EQ(counter.args.at("value"), 3.0);

    // Clock-domain filter.
    EXPECT_EQ(doc.eventsOnClock(kSimPid).size(), 1u);
    EXPECT_EQ(doc.eventsOnClock(kWallPid).size(), 3u);
}

TEST(TraceModel, RejectsMalformedDocumentsNamingTheOffender)
{
    const auto expectInvalid = [](const std::string &text,
                                  const std::string &needle) {
        const auto parsed = parseTrace(text);
        ASSERT_FALSE(parsed.ok()) << text;
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
        EXPECT_NE(parsed.status().message().find(needle),
                  std::string::npos)
            << parsed.status().toString();
    };

    expectInvalid("[1, 2]", "not an object");
    expectInvalid(R"({"displayTimeUnit": "ms"})", "traceEvents");
    expectInvalid(R"({"traceEvents": []})", "empty");
    expectInvalid(
        R"({"traceEvents": [{"name": "x", "ph": "B", "ts": 0}]})",
        "traceEvents[0]");
    expectInvalid(
        R"({"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]})",
        "dur");
    expectInvalid(R"({"traceEvents": [
        {"name": "x", "ph": "X", "ts": 0, "dur": -1}]})",
                  "negative");
    expectInvalid(R"({"traceEvents": [{"name": "x", "ph": "i"}]})",
                  "ts");
    expectInvalid(R"({"traceEvents": [
        {"name": "x", "ph": "i", "ts": 0, "args": {"bad": [1]}}]})",
                  "neither number nor string");
    // A document with only metadata parses as JSON but has nothing to
    // analyze — that is an input error, not an empty report.
    expectInvalid(R"({"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "wall clock"}}]})",
                  "only metadata");
    // Truncated JSON is a parse error, not a crash.
    const auto truncated =
        parseTrace(R"({"traceEvents": [{"name": "x")");
    EXPECT_FALSE(truncated.ok());
}

TEST(TraceModel, MissingFileIsNotFound)
{
    const auto parsed =
        parseTraceFile("/nonexistent/cfconv_no_such.trace");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

} // namespace
} // namespace cfconv::analyze
