/** @file Tests for the offline trace analytics (analyze/analysis):
 *  interval/overlap math on synthetic timelines with hand-computed
 *  answers, signature normalization, duplicate-timeline collapse,
 *  round-trips on traces recorded from both simulator backends and
 *  the serving simulator, and the determinism contract — the non-wall
 *  analysis of a model run must be byte-identical whether the trace
 *  was recorded at 1 or 4 pool threads. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analyze/analysis.h"
#include "analyze/analysis_report.h"
#include "analyze/trace_model.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "gpusim/kernel_cache.h"
#include "models/model_zoo.h"
#include "serve/serving_sim.h"
#include "sim/model_runner.h"
#include "tpusim/layer_cache.h"

namespace cfconv::analyze {
namespace {

void
clearMemoCaches()
{
    tpusim::LayerCache::instance().clear();
    gpusim::KernelCache::instance().clear();
}

/** Build a one-timeline trace document from (start, dur) span lists
 *  on a "<label> fill" / "<label> compute" row pair. */
std::string
syntheticTrace(const std::vector<std::pair<double, double>> &fills,
               const std::vector<std::pair<double, double>> &computes,
               const std::string &label = "conv 3x3 64->64 M=100")
{
    std::string text = R"({"traceEvents": [
  {"name": "thread_name", "ph": "M", "pid": 2, "tid": 1,
   "args": {"name": ")" + label + R"( fill"}},
  {"name": "thread_name", "ph": "M", "pid": 2, "tid": 2,
   "args": {"name": ")" + label + R"( compute"}})";
    char buf[160];
    for (const auto &[ts, dur] : fills) {
        std::snprintf(buf, sizeof(buf),
                      ",\n  {\"name\": \"fill\", \"ph\": \"X\", "
                      "\"pid\": 2, \"tid\": 1, \"ts\": %g, "
                      "\"dur\": %g}",
                      ts, dur);
        text += buf;
    }
    for (const auto &[ts, dur] : computes) {
        std::snprintf(buf, sizeof(buf),
                      ",\n  {\"name\": \"compute\", \"ph\": \"X\", "
                      "\"pid\": 2, \"tid\": 2, \"ts\": %g, "
                      "\"dur\": %g}",
                      ts, dur);
        text += buf;
    }
    return text + "\n]}";
}

TraceAnalysis
analyzeText(const std::string &text, bool includeWall = true)
{
    const auto doc = parseTrace(text);
    EXPECT_TRUE(doc.ok()) << doc.status().toString();
    AnalyzeOptions options;
    options.includeWall = includeWall;
    return analyzeTrace(doc.value(), options);
}

TEST(UnionCycles, MergesOverlapsAndIgnoresEmpties)
{
    EXPECT_EQ(unionCycles({}), 0.0);
    EXPECT_EQ(unionCycles({{0, 10}}), 10.0);
    EXPECT_EQ(unionCycles({{0, 10}, {5, 15}}), 15.0);   // overlap
    EXPECT_EQ(unionCycles({{0, 10}, {10, 15}}), 15.0);  // adjacent
    EXPECT_EQ(unionCycles({{20, 30}, {0, 10}}), 20.0);  // unsorted gap
    EXPECT_EQ(unionCycles({{5, 5}, {0, 10}}), 10.0);    // degenerate
}

TEST(TimelineSignature, NormalizesAcrossBackendsAndAlgorithms)
{
    // The TPU's M= tail and every lowering word drop out.
    EXPECT_EQ(timelineSignature("conv 3x3 64->64 M=12544"),
              "3x3 64->64");
    EXPECT_EQ(timelineSignature("cf-conv 3x3 64->64"), "3x3 64->64");
    EXPECT_EQ(timelineSignature("cf-conv+reuse 1x1 256->512"),
              "1x1 256->512");
    EXPECT_EQ(timelineSignature("indirect-conv 7x7 3->64 M=100352"),
              "7x7 3->64");
    // GEMM and unknown labels pass through whole.
    EXPECT_EQ(timelineSignature("gemm 100x27x64"), "gemm 100x27x64");
    EXPECT_EQ(timelineSignature("functional array"),
              "functional array");
}

TEST(AnalyzeTrace, OverlapMathMatchesHandComputation)
{
    // fill [0,10)+[10,15), compute [10,30): overlap is [10,15).
    const TraceAnalysis a =
        analyzeText(syntheticTrace({{0, 10}, {10, 5}}, {{10, 20}}));
    ASSERT_EQ(a.timelines.size(), 1u);
    const TimelineAnalysis &t = a.timelines[0];
    EXPECT_EQ(t.key, "conv 3x3 64->64 M=100");
    EXPECT_EQ(t.signature, "3x3 64->64");
    EXPECT_EQ(t.kind, "conv");
    EXPECT_EQ(t.style, "conv");
    EXPECT_EQ(t.phases, "fill/compute");
    EXPECT_EQ(t.fillCycles, 15.0);
    EXPECT_EQ(t.computeCycles, 20.0);
    EXPECT_EQ(t.overlapCycles, 5.0);
    EXPECT_EQ(t.exposedFillCycles, 10.0);
    EXPECT_EQ(t.spanCycles, 30.0);
    EXPECT_EQ(t.idleCycles, 0.0);
    EXPECT_DOUBLE_EQ(t.overlapRatio, 5.0 / 15.0);
    EXPECT_FALSE(t.fillBound); // compute 20 > fill 15
    EXPECT_EQ(t.fillSpans, 2u);
    EXPECT_EQ(t.computeSpans, 1u);
    // The run rollup over a single timeline is that timeline.
    EXPECT_EQ(a.criticalPath.timelines, 1u);
    EXPECT_EQ(a.criticalPath.spanCycles, 30.0);
    EXPECT_DOUBLE_EQ(a.criticalPath.overlapRatio, 5.0 / 15.0);
}

TEST(AnalyzeTrace, IdleGapsAndFillBoundedness)
{
    // fill [0,5), gap, compute [10,20): no overlap, 5 idle cycles.
    const TraceAnalysis a =
        analyzeText(syntheticTrace({{0, 5}}, {{10, 10}}));
    ASSERT_EQ(a.timelines.size(), 1u);
    const TimelineAnalysis &t = a.timelines[0];
    EXPECT_EQ(t.overlapCycles, 0.0);
    EXPECT_EQ(t.idleCycles, 5.0);
    EXPECT_EQ(t.spanCycles, 20.0);
    // The accounting identity holds exactly.
    EXPECT_EQ(t.spanCycles,
              t.computeCycles + t.exposedFillCycles + t.idleCycles);

    // A fill-dominated timeline is flagged memory-bound.
    const TraceAnalysis b =
        analyzeText(syntheticTrace({{0, 30}}, {{0, 10}}));
    ASSERT_EQ(b.timelines.size(), 1u);
    EXPECT_TRUE(b.timelines[0].fillBound);
}

TEST(AnalyzeTrace, CollapsesDuplicateTimelinesKeepsDistinctOnes)
{
    // Two identical replays of one layer (a concurrent memo-cache
    // miss) plus one genuinely different instance of the same label.
    const std::string label = "conv 1x1 8->8 M=64";
    std::string text = R"({"traceEvents": [)";
    const auto addPair = [&](int tidBase, double dur, bool first) {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
            "\"pid\": 2, \"tid\": %d, \"args\": {\"name\": \"%s "
            "fill\"}},\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
            "\"pid\": 2, \"tid\": %d, \"args\": {\"name\": \"%s "
            "compute\"}},\n  {\"name\": \"fill\", \"ph\": \"X\", "
            "\"pid\": 2, \"tid\": %d, \"ts\": 0, \"dur\": %g},\n  "
            "{\"name\": \"compute\", \"ph\": \"X\", \"pid\": 2, "
            "\"tid\": %d, \"ts\": %g, \"dur\": 10}",
            first ? "" : ",", tidBase, label.c_str(), tidBase + 1,
            label.c_str(), tidBase, dur, tidBase + 1, dur);
        text += buf;
    };
    addPair(1, 4.0, true);
    addPair(3, 4.0, false); // exact duplicate of the first
    addPair(5, 6.0, false); // distinct second instance
    text += "\n]}";

    const TraceAnalysis a = analyzeText(text);
    ASSERT_EQ(a.timelines.size(), 2u);
    EXPECT_EQ(a.timelines[0].key, label);
    EXPECT_EQ(a.timelines[0].instance, 0);
    EXPECT_EQ(a.timelines[1].instance, 1);
    // Signatures stay unique: the second instance is suffixed.
    EXPECT_EQ(a.timelines[0].signature, "1x1 8->8");
    EXPECT_EQ(a.timelines[1].signature, "1x1 8->8 #2");
    EXPECT_NE(a.timelines[0].fillCycles, a.timelines[1].fillCycles);
}

class RecordedTraceTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        trace::resetForTest();
        parallel::setThreads(0);
    }

    /** Run AlexNet on @p backend with the recorder armed and return
     *  the parsed trace. */
    TraceDocument
    record(const char *backend, const std::string &path, Index threads)
    {
        clearMemoCaches();
        if (threads > 0)
            parallel::setThreads(threads);
        trace::start(path);
        const auto accelerator = sim::makeAccelerator(backend);
        sim::ModelRunner(*accelerator).runModel(models::alexnet(8));
        EXPECT_TRUE(trace::stop());
        auto doc = parseTraceFile(path);
        EXPECT_TRUE(doc.ok()) << doc.status().toString();
        std::remove(path.c_str());
        return std::move(doc).value();
    }
};

TEST_F(RecordedTraceTest, TpuRoundTripHasConvTimelinesAndWallStats)
{
    const TraceDocument doc = record(
        "tpu-v2", ::testing::TempDir() + "cfconv_an_tpu.trace", 0);
    const TraceAnalysis a = analyzeTrace(doc);

    ASSERT_FALSE(a.timelines.empty());
    for (const auto &t : a.timelines) {
        EXPECT_EQ(t.kind, "conv") << t.key;
        EXPECT_EQ(t.style, "conv") << t.key;
        EXPECT_EQ(t.phases, "fill/compute") << t.key;
        EXPECT_GT(t.spanCycles, 0.0) << t.key;
        // The accounting identity holds for every real timeline.
        EXPECT_DOUBLE_EQ(t.spanCycles, t.computeCycles +
                                           t.exposedFillCycles +
                                           t.idleCycles)
            << t.key;
    }
    EXPECT_EQ(a.criticalPath.timelines, a.timelines.size());
    EXPECT_GT(a.criticalPath.spanCycles, 0.0);
    ASSERT_EQ(a.models.size(), 1u);
    EXPECT_EQ(a.models[0], "AlexNet");
    ASSERT_EQ(a.accelerators.size(), 1u);
    EXPECT_EQ(a.accelerators[0], "tpu-v2");
    // Stock backend: no algorithm stamps.
    EXPECT_TRUE(a.algorithms.empty());
    ASSERT_TRUE(a.hasWall);
    EXPECT_GT(a.wall.events, 0u);
    EXPECT_EQ(a.wall.modelSpans, 1u);
    EXPECT_GT(a.wall.layerSpans, 0u);
}

TEST_F(RecordedTraceTest, GpuRoundTripShowsOverlapAndMacPhases)
{
    const TraceDocument doc = record(
        "gpu-v100", ::testing::TempDir() + "cfconv_an_gpu.trace", 0);
    const TraceAnalysis a = analyzeTrace(doc);

    ASSERT_FALSE(a.timelines.empty());
    double overlap = 0.0;
    for (const auto &t : a.timelines) {
        EXPECT_EQ(t.phases, "fill/mac") << t.key;
        EXPECT_GT(t.fillCycles, 0.0) << t.key;
        overlap += t.overlapCycles;
    }
    // The GPU pipeline double-buffers smem fills under MACs: some
    // overlap must be visible or the analyzer is not seeing it.
    EXPECT_GT(overlap, 0.0);
    EXPECT_GT(a.criticalPath.overlapRatio, 0.0);
}

TEST_F(RecordedTraceTest, ZooVariantTracesCarryAlgorithmStamps)
{
    const TraceDocument doc = record(
        "gpu-v100-indirect",
        ::testing::TempDir() + "cfconv_an_ind.trace", 0);
    const TraceAnalysis a = analyzeTrace(doc);

    // The satellite: zoo spans self-describe algorithm and variant.
    ASSERT_FALSE(a.algorithms.empty());
    EXPECT_EQ(a.algorithms[0], "indirect");
    ASSERT_FALSE(a.variants.empty());
    EXPECT_EQ(a.variants[0], "gpu-v100-indirect");
}

TEST_F(RecordedTraceTest, NonWallAnalysisIsByteIdenticalAcrossThreads)
{
    const std::string p1 =
        ::testing::TempDir() + "cfconv_an_t1.trace";
    const std::string p4 =
        ::testing::TempDir() + "cfconv_an_t4.trace";
    AnalyzeOptions noWall;
    noWall.includeWall = false;

    const TraceDocument d1 = record("tpu-v2", p1, 1);
    const std::string j1 = analysisJson(analyzeTrace(d1, noWall));
    const TraceDocument d4 = record("tpu-v2", p4, 4);
    const std::string j4 = analysisJson(analyzeTrace(d4, noWall));
    EXPECT_EQ(j1, j4);

    // Re-analyzing the same document reproduces every byte, wall
    // section included: the analyzer itself is deterministic.
    EXPECT_EQ(analysisJson(analyzeTrace(d4)),
              analysisJson(analyzeTrace(d4)));
}

TEST_F(RecordedTraceTest, ServingTraceYieldsChipOccupancyAndOutages)
{
    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=3; serve.chip_down=0.25")
                    .ok());
    const std::string path =
        ::testing::TempDir() + "cfconv_an_serve.trace";
    trace::start(path);
    serve::ServingConfig config;
    config.chips = {{"tpu-v2"}, {"tpu-v2"}};
    serve::ServingSimulator sim(
        config, {{"alexnet", &models::alexnet, 1.0}});
    serve::TrafficSpec traffic;
    traffic.ratePerSecond = 400;
    traffic.horizonSeconds = 0.25;
    traffic.seed = 11;
    const serve::ServingResult result = sim.run(traffic);
    EXPECT_TRUE(trace::stop());
    ASSERT_TRUE(fault::FaultInjector::instance().configure("").ok());

    const auto doc = parseTraceFile(path);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    std::remove(path.c_str());
    const TraceAnalysis a = analyzeTrace(doc.value());

    ASSERT_EQ(a.chips.size(), 2u);
    for (const auto &chip : a.chips) {
        EXPECT_EQ(chip.run, 0);
        EXPECT_EQ(chip.variant, "tpu-v2");
        EXPECT_GE(chip.occupancy, 0.0);
        EXPECT_LE(chip.occupancy, 1.0);
        EXPECT_EQ(chip.makespanTicks, a.chips[0].makespanTicks);
    }
    EXPECT_EQ(a.chips[0].chip, 0);
    EXPECT_EQ(a.chips[1].chip, 1);
    // The chaos run actually downed chips, and the instants (the
    // chip_down satellite) surfaced them in the analysis.
    EXPECT_GT(result.chipDownEvents, 0);
    EXPECT_TRUE(a.hasResilience);
    EXPECT_EQ(a.resilience.chipDownEvents,
              static_cast<std::size_t>(result.chipDownEvents));
    EXPECT_EQ(a.resilience.chipDownEvents,
              a.chips[0].outages + a.chips[1].outages);
}

TEST_F(RecordedTraceTest, ResilientServingTraceYieldsBreakerTimeline)
{
    ASSERT_TRUE(
        fault::FaultInjector::instance()
            .configure("seed=42; serve.chip_down@gpu-v100=0.6")
            .ok());
    const std::string path =
        ::testing::TempDir() + "cfconv_an_resilient.trace";
    trace::start(path);
    serve::ServingConfig config;
    config.chips = {{"gpu-v100"}, {"tpu-v2"}, {"tpu-v2"}};
    config.breaker.enabled = true;
    config.breaker.failureThreshold = 2;
    config.breaker.openSeconds = 50e-3;
    config.degradation.enabled = true;
    config.degradation.stepUpPressure = 1.5;
    config.degradation.stepUpAfterSeconds = 2e-3;
    serve::ServingSimulator sim(
        config, {{"alexnet", &models::alexnet, 1.0}});
    serve::TrafficSpec traffic;
    traffic.ratePerSecond = 400;
    traffic.horizonSeconds = 0.25;
    traffic.seed = 11;
    const serve::ServingResult result = sim.run(traffic);
    EXPECT_TRUE(trace::stop());
    ASSERT_TRUE(fault::FaultInjector::instance().configure("").ok());

    const auto doc = parseTraceFile(path);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    std::remove(path.c_str());
    const TraceAnalysis a = analyzeTrace(doc.value());

    // The breaker instants land on the flaky chip's track and the
    // per-chip tallies reconcile with the simulator's own counters.
    ASSERT_GT(result.breakerTrips, 0);
    ASSERT_TRUE(a.hasServingResilience);
    std::size_t trips = 0, probes = 0, closes = 0;
    for (const auto &chip : a.serving.chips) {
        trips += chip.trips;
        probes += chip.probes;
        closes += chip.closes;
        EXPECT_FALSE(chip.timeline.empty());
        for (const auto &event : chip.timeline) {
            EXPECT_TRUE(event.state == "open" ||
                        event.state == "probe" ||
                        event.state == "closed")
                << event.state;
        }
    }
    EXPECT_EQ(trips, static_cast<std::size_t>(result.breakerTrips));
    EXPECT_EQ(probes, static_cast<std::size_t>(result.breakerProbes));
    EXPECT_EQ(closes, static_cast<std::size_t>(result.breakerCloses));
    EXPECT_EQ(a.serving.hedgeWins + a.serving.hedgeLosses,
              static_cast<std::size_t>(result.hedgeWins +
                                       result.hedgeLosses));

    // The degradation track produced an occupancy row whose ticks sum
    // to the run's makespan.
    ASSERT_EQ(a.serving.degradation.size(), 1u);
    const auto &occupancy = a.serving.degradation[0];
    EXPECT_EQ(occupancy.transitions,
              static_cast<std::size_t>(result.degradeTransitions));
    EXPECT_EQ(occupancy.maxStep, result.degradeStepMax);
    const double totalTicks =
        occupancy.stepTicks[0] + occupancy.stepTicks[1] +
        occupancy.stepTicks[2] + occupancy.stepTicks[3];
    EXPECT_GT(totalTicks, 0.0);

    // The serving-resilience section bumps the schema stamp and shows
    // up in both the JSON and the headline.
    const std::string json = analysisJson(a);
    EXPECT_NE(json.find("\"version\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"serving\""), std::string::npos);
    EXPECT_NE(json.find("\"breakers\""), std::string::npos);
    EXPECT_NE(json.find("\"degradation\""), std::string::npos);
    EXPECT_NE(analysisHeadline("resilient", a).find("breaker_trips="),
              std::string::npos);
}

} // namespace
} // namespace cfconv::analyze
