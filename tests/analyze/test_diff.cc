/** @file Tests for the cross-trace diff (analyze/diff): alignment by
 *  normalized signature including layers missing on one side, the
 *  delta arithmetic, and the acceptance scenario — one model recorded
 *  on tpu-v2 aligns layer-for-layer against the same model on
 *  gpu-v100 even though the two backends label their timelines
 *  differently. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "analyze/analysis.h"
#include "analyze/analysis_report.h"
#include "analyze/diff.h"
#include "analyze/trace_model.h"
#include "common/trace.h"
#include "gpusim/kernel_cache.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "tpusim/layer_cache.h"

namespace cfconv::analyze {
namespace {

TimelineAnalysis
timeline(const std::string &key, double span, double overlapRatio,
         bool fillBound)
{
    TimelineAnalysis t;
    t.key = key;
    t.signature = timelineSignature(key);
    t.spanCycles = span;
    t.overlapRatio = overlapRatio;
    t.fillBound = fillBound;
    return t;
}

TEST(DiffAnalyses, AlignsBySignatureAndReportsOneSidedLayers)
{
    // Left: a TPU-style run. Right: a GPU-style run of an overlapping
    // but not identical layer set.
    TraceAnalysis left;
    left.timelines = {
        timeline("conv 3x3 64->64 M=12544", 100.0, 0.0, false),
        timeline("conv 1x1 64->256 M=12544", 50.0, 0.0, false),
        timeline("conv 11x11 3->96 M=3025", 400.0, 0.0, false),
    };
    TraceAnalysis right;
    right.timelines = {
        timeline("cf-conv 3x3 64->64", 50.0, 0.5, true),
        timeline("cf-conv 1x1 64->256", 100.0, 0.25, false),
        timeline("cf-conv 5x5 96->256", 70.0, 0.1, true),
    };

    const AnalysisDiff diff = diffAnalyses(left, right);
    ASSERT_EQ(diff.aligned.size(), 2u);
    ASSERT_EQ(diff.leftOnly.size(), 1u);
    ASSERT_EQ(diff.rightOnly.size(), 1u);

    // Sorted by signature: "1x1 64->256" before "3x3 64->64".
    const DiffRow &r0 = diff.aligned[0];
    EXPECT_EQ(r0.signature, "1x1 64->256");
    EXPECT_EQ(r0.leftKey, "conv 1x1 64->256 M=12544");
    EXPECT_EQ(r0.rightKey, "cf-conv 1x1 64->256");
    EXPECT_DOUBLE_EQ(r0.spanRatio, 2.0);
    EXPECT_DOUBLE_EQ(r0.overlapDelta, 0.25);
    EXPECT_FALSE(r0.leftFillBound);
    EXPECT_FALSE(r0.rightFillBound);

    const DiffRow &r1 = diff.aligned[1];
    EXPECT_EQ(r1.signature, "3x3 64->64");
    EXPECT_DOUBLE_EQ(r1.spanRatio, 0.5);
    EXPECT_DOUBLE_EQ(r1.overlapDelta, 0.5);
    EXPECT_TRUE(r1.rightFillBound);

    // Missing layers are listed, never dropped.
    EXPECT_EQ(diff.leftOnly[0].signature, "11x11 3->96");
    EXPECT_EQ(diff.leftOnly[0].leftKey, "conv 11x11 3->96 M=3025");
    EXPECT_TRUE(diff.leftOnly[0].rightKey.empty());
    EXPECT_EQ(diff.rightOnly[0].signature, "5x5 96->256");

    // Headline aggregates: geomean of {2.0, 0.5} is 1, one flip.
    EXPECT_DOUBLE_EQ(diff.spanRatioGeoMean, 1.0);
    EXPECT_DOUBLE_EQ(diff.overlapDeltaMean, (0.25 + 0.5) / 2.0);
    EXPECT_EQ(diff.boundednessFlips, 1u);

    // The emitted document carries all three row groups.
    const std::string json = diffJson(diff);
    EXPECT_NE(json.find("\"cfconv.trace_analysis_diff\""),
              std::string::npos);
    EXPECT_NE(json.find("\"left_only\""), std::string::npos);
    EXPECT_NE(json.find("11x11 3->96"), std::string::npos);
}

TEST(DiffAnalyses, EmptySidesDiffCleanly)
{
    const AnalysisDiff diff = diffAnalyses({}, {});
    EXPECT_TRUE(diff.aligned.empty());
    EXPECT_EQ(diff.spanRatioGeoMean, 0.0);
    EXPECT_EQ(diff.overlapDeltaMean, 0.0);
}

TEST(DiffAnalyses, CrossBackendTracesAlignLayerForLayer)
{
    const auto record = [](const char *backend,
                           const std::string &path) {
        tpusim::LayerCache::instance().clear();
        gpusim::KernelCache::instance().clear();
        trace::start(path);
        const auto accelerator = sim::makeAccelerator(backend);
        sim::ModelRunner(*accelerator).runModel(models::alexnet(8));
        EXPECT_TRUE(trace::stop());
        auto doc = parseTraceFile(path);
        EXPECT_TRUE(doc.ok()) << doc.status().toString();
        std::remove(path.c_str());
        return analyzeTrace(std::move(doc).value());
    };

    const TraceAnalysis tpu = record(
        "tpu-v2", ::testing::TempDir() + "cfconv_diff_tpu.trace");
    trace::resetForTest();
    const TraceAnalysis gpu = record(
        "gpu-v100", ::testing::TempDir() + "cfconv_diff_gpu.trace");
    trace::resetForTest();

    const AnalysisDiff diff = diffAnalyses(tpu, gpu);
    // Same model, same layers: every timeline aligns despite the
    // different labels ("conv ... M=" vs "cf-conv ...").
    EXPECT_EQ(diff.aligned.size(), tpu.timelines.size());
    EXPECT_TRUE(diff.leftOnly.empty());
    EXPECT_TRUE(diff.rightOnly.empty());
    EXPECT_GT(diff.spanRatioGeoMean, 0.0);
    for (const auto &row : diff.aligned) {
        EXPECT_GT(row.spanRatio, 0.0) << row.signature;
        EXPECT_TRUE(std::isfinite(row.spanRatio)) << row.signature;
    }
}

} // namespace
} // namespace cfconv::analyze
