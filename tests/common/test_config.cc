/** @file Tests for the key=value configuration parser and the TPU
 *  config adapter. */

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/logging.h"
#include "tpusim/tpu_config.h"

namespace cfconv {
namespace {

TEST(Config, ParsesTypedValues)
{
    const Config c = Config::fromString(
        "array = 256\n"
        "clock_ghz = 0.94   # comment\n"
        "name = tpu-v3ish\n"
        "overlap = true\n"
        "\n"
        "# full-line comment\n");
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(c.getInt("array", 0), 256);
    EXPECT_DOUBLE_EQ(c.getDouble("clock_ghz", 0.0), 0.94);
    EXPECT_EQ(c.getString("name", ""), "tpu-v3ish");
    EXPECT_TRUE(c.getBool("overlap", false));
}

TEST(Config, FallbacksForMissingKeys)
{
    const Config c = Config::fromString("a = 1\n");
    EXPECT_EQ(c.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 2.5), 2.5);
    EXPECT_FALSE(c.getBool("missing", false));
    EXPECT_EQ(c.getString("missing", "x"), "x");
    EXPECT_FALSE(c.has("missing"));
    EXPECT_TRUE(c.has("a"));
}

TEST(Config, RejectsMalformedInput)
{
    EXPECT_THROW(Config::fromString("just a line\n"), FatalError);
    EXPECT_THROW(Config::fromString("= value\n"), FatalError);
    EXPECT_THROW(Config::fromString("a = 1\na = 2\n"), FatalError);
}

TEST(Config, RejectsWrongTypes)
{
    const Config c = Config::fromString("k = hello\n");
    EXPECT_THROW(c.getInt("k", 0), FatalError);
    EXPECT_THROW(c.getDouble("k", 0.0), FatalError);
    EXPECT_THROW(c.getBool("k", false), FatalError);
}

TEST(Config, TracksUnusedKeys)
{
    const Config c = Config::fromString("a = 1\nb = 2\n");
    EXPECT_EQ(c.getInt("a", 0), 1);
    const auto unused = c.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(*unused.begin(), "b");
}

TEST(Config, MissingFileIsFatal)
{
    EXPECT_THROW(Config::fromFile("/nonexistent/path.cfg"),
                 FatalError);
}

TEST(TpuConfigFrom, AppliesOverrides)
{
    const Config c = Config::fromString(
        "array = 256\n"
        "clock_ghz = 0.94\n"
        "dram_gbps = 900\n");
    const tpusim::TpuConfig cfg = tpusim::tpuConfigFrom(c);
    EXPECT_EQ(cfg.array.rows, 256);
    EXPECT_EQ(cfg.vectorMemories, 256);
    EXPECT_DOUBLE_EQ(cfg.clockGhz, 0.94);
    EXPECT_NEAR(cfg.dram.peakGBps(), 900.0, 1.0);
    // Untouched fields keep their TPU-v2 defaults.
    EXPECT_EQ(cfg.wordElems, 8);
}

TEST(TpuConfigFrom, EmptyConfigIsIdentity)
{
    const tpusim::TpuConfig base = tpusim::TpuConfig::tpuV2();
    const tpusim::TpuConfig cfg =
        tpusim::tpuConfigFrom(Config::fromString(""));
    EXPECT_EQ(cfg.array.rows, base.array.rows);
    EXPECT_DOUBLE_EQ(cfg.clockGhz, base.clockGhz);
    EXPECT_EQ(cfg.onChipBytes, base.onChipBytes);
}

TEST(TpuConfigFrom, UnknownKeysAreFatal)
{
    const Config c = Config::fromString("arary = 256\n");
    EXPECT_THROW(tpusim::tpuConfigFrom(c), FatalError);
}

} // namespace
} // namespace cfconv
