/** @file Tests for the minimal JSON reader (common/json): scalar and
 *  container parsing, escape handling, round-trip with the JsonWriter,
 *  and rejection of malformed documents with byte offsets. */

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/report.h"

namespace cfconv {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseJson("null").value().isNull());
    EXPECT_TRUE(parseJson("true").value().asBool());
    EXPECT_FALSE(parseJson("false").value().asBool());
    EXPECT_DOUBLE_EQ(parseJson("42").value().asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-3.5e2").value().asNumber(), -350.0);
    EXPECT_EQ(parseJson("\"hi\"").value().asString(), "hi");
    EXPECT_DOUBLE_EQ(parseJson(" 7 ").value().asNumber(), 7.0);
}

TEST(JsonParse, NestedContainers)
{
    const auto doc = parseJson(
        R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}, "e": null})");
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &v = doc.value();
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.get("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asNumber(), 1.0);
    EXPECT_TRUE(a->items()[2].get("b")->asBool());
    EXPECT_EQ(v.get("c")->stringOr("d", ""), "x");
    EXPECT_TRUE(v.get("e")->isNull());
    EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    const auto doc =
        parseJson(R"("a\"b\\c\/d\n\tAé")");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().asString(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParse, TypedAccessorsAreNeutralOnMismatch)
{
    const JsonValue v = parseJson("\"text\"").value();
    EXPECT_DOUBLE_EQ(v.asNumber(), 0.0);
    EXPECT_FALSE(v.asBool());
    EXPECT_TRUE(v.items().empty());
    EXPECT_TRUE(v.members().empty());
    EXPECT_EQ(v.get("k"), nullptr);
    EXPECT_DOUBLE_EQ(v.numberOr("k", 9.0), 9.0);
    EXPECT_EQ(v.stringOr("k", "d"), "d");
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "[1 2]", "tru",
          "\"unterminated", "\"bad\\q\"", "\"trunc\\u00\"", "1 2",
          "{\"a\": 1,}", "{1: 2}", "nan", "--1"}) {
        const auto doc = parseJson(bad);
        EXPECT_FALSE(doc.ok()) << "accepted: " << bad;
        if (!doc.ok()) {
            EXPECT_EQ(doc.status().code(),
                      StatusCode::kInvalidArgument)
                << bad;
        }
    }
}

TEST(JsonParse, RejectsPathologicalNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    const auto doc = parseJson(deep);
    ASSERT_FALSE(doc.ok());
    EXPECT_NE(doc.status().message().find("deep"), std::string::npos);
}

TEST(JsonParse, RoundTripsJsonWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "tuned \"db\"");
    w.field("version", static_cast<long long>(3));
    w.field("ratio", 0.125);
    w.field("on", true);
    w.key("items");
    w.beginArray();
    w.value(1.5);
    w.valueNull();
    w.endArray();
    w.endObject();

    const auto doc = parseJson(w.str());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const JsonValue &v = doc.value();
    EXPECT_EQ(v.stringOr("name", ""), "tuned \"db\"");
    EXPECT_DOUBLE_EQ(v.numberOr("version", 0), 3.0);
    EXPECT_DOUBLE_EQ(v.numberOr("ratio", 0), 0.125);
    EXPECT_TRUE(v.get("on")->asBool());
    ASSERT_EQ(v.get("items")->items().size(), 2u);
    EXPECT_TRUE(v.get("items")->items()[1].isNull());
}

TEST(JsonParseFile, MissingFileIsNotFound)
{
    const auto doc = parseJsonFile("/nonexistent/nope.json");
    ASSERT_FALSE(doc.ok());
    EXPECT_EQ(doc.status().code(), StatusCode::kNotFound);
}

} // namespace
} // namespace cfconv
