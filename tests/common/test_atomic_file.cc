/** @file Tests for crash-consistent persistence (common/atomic_file):
 *  write-temp+rename round-trips, the FNV-1a checksum trailer,
 *  DATA_LOSS detection of torn/corrupted content, and acceptance of
 *  legacy trailer-less files. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/atomic_file.h"

namespace cfconv {
namespace {

std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + "cfconv_atomic_" + stem + ".txt";
}

std::string
rawRead(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(ContentChecksum, DeterministicAndContentSensitive)
{
    const std::string a = contentChecksum("hello");
    EXPECT_EQ(a.size(), 16u);
    EXPECT_EQ(a, contentChecksum("hello"));
    EXPECT_NE(a, contentChecksum("hello!"));
    EXPECT_NE(contentChecksum(""), contentChecksum("\n"));
}

TEST(AtomicWriteFile, RoundTripsAndReplacesExisting)
{
    const std::string path = tempPath("plain");
    ASSERT_TRUE(atomicWriteFile(path, "first\n"));
    auto read = readFileVerified(path);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    EXPECT_EQ(read.value(), "first\n");

    // Replacement is atomic: no .tmp residue, new content visible.
    ASSERT_TRUE(atomicWriteFile(path, "second\n"));
    EXPECT_EQ(rawRead(path), "second\n");
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(AtomicWriteFile, ChecksummedRoundTripStripsTheTrailer)
{
    const std::string path = tempPath("sum");
    const std::string content = "{\"k\": 1}\n";
    ASSERT_TRUE(atomicWriteFileChecksummed(path, content));

    // The raw file carries the trailer; the verified read strips it.
    const std::string raw = rawRead(path);
    EXPECT_NE(raw.find(kChecksumTrailerPrefix), std::string::npos);
    auto read = readFileVerified(path);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    EXPECT_EQ(read.value(), content);
    std::remove(path.c_str());
}

TEST(ReadFileVerified, TruncationIsDataLossNamingThePath)
{
    const std::string path = tempPath("torn");
    ASSERT_TRUE(
        atomicWriteFileChecksummed(path, "a long enough payload\n"));

    // Truncate mid-content, keeping the (now stale) trailer intact —
    // the shape a torn write or bit rot leaves behind.
    const std::string raw = rawRead(path);
    const size_t trailer = raw.rfind(kChecksumTrailerPrefix);
    ASSERT_NE(trailer, std::string::npos);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << raw.substr(0, 4) << '\n' << raw.substr(trailer);
    }
    const auto read = readFileVerified(path);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(read.status().toString().find(path), std::string::npos);
    std::remove(path.c_str());
}

TEST(ReadFileVerified, BitFlipIsDataLoss)
{
    const std::string path = tempPath("flip");
    ASSERT_TRUE(atomicWriteFileChecksummed(path, "payload payload\n"));
    std::string raw = rawRead(path);
    raw[0] = raw[0] == 'x' ? 'y' : 'x';
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << raw;
    }
    const auto read = readFileVerified(path);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
    std::remove(path.c_str());
}

TEST(ReadFileVerified, LegacyTrailerlessFilesStillLoad)
{
    const std::string path = tempPath("legacy");
    {
        std::ofstream out(path, std::ios::binary);
        out << "old artifact without a trailer\n";
    }
    const auto read = readFileVerified(path);
    ASSERT_TRUE(read.ok()) << read.status().toString();
    EXPECT_EQ(read.value(), "old artifact without a trailer\n");
    std::remove(path.c_str());
}

TEST(ReadFileVerified, MissingFileIsNotFound)
{
    const auto read = readFileVerified("/nonexistent/dir/x.txt");
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(AtomicWriteFile, UnwritablePathFailsWithoutAborting)
{
    EXPECT_FALSE(atomicWriteFile("/nonexistent-dir/x/y.txt", "z"));
    EXPECT_FALSE(
        atomicWriteFileChecksummed("/nonexistent-dir/x/y.txt", "z"));
}

} // namespace
} // namespace cfconv
