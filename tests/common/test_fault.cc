/** @file Tests for the deterministic fault injector: spec parsing,
 *  pure per-key decisions, scoped rates, and the resilience policy. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/fault.h"

namespace cfconv::fault {
namespace {

/** Every test leaves the process-wide injector disarmed. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().disarm(); }
    void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_F(FaultTest, DisarmedByDefault)
{
    auto &injector = FaultInjector::instance();
    EXPECT_FALSE(injector.armed());
    EXPECT_FALSE(injector.shouldInject(kAccelStepTimeout, "tpu-v2", 1));
    EXPECT_FALSE(injector.inject(kCacheCorrupt, "", 7));
}

TEST_F(FaultTest, ConfiguresSitesAndPolicy)
{
    auto &injector = FaultInjector::instance();
    ASSERT_TRUE(injector
                    .configure("seed=42; accel.step_timeout=0.5; "
                               "cache.corrupt@layer_cache=1.0; "
                               "max_attempts=4; backoff_us=50; "
                               "backoff_mult=3; backoff_cap_us=400; "
                               "failover=gpu-v100,tpu-v2")
                    .ok());
    EXPECT_TRUE(injector.armed());
    EXPECT_EQ(injector.seed(), 42u);
    EXPECT_DOUBLE_EQ(injector.rate(kAccelStepTimeout, "tpu-v2"), 0.5);
    // The scoped rate overrides the (absent) unscoped one.
    EXPECT_DOUBLE_EQ(injector.rate(kCacheCorrupt, "layer_cache"), 1.0);
    EXPECT_DOUBLE_EQ(injector.rate(kCacheCorrupt, "kernel_cache"), 0.0);

    const ResiliencePolicy policy = injector.policy();
    EXPECT_EQ(policy.maxAttempts, 4);
    EXPECT_DOUBLE_EQ(policy.backoffSeconds, 50e-6);
    EXPECT_DOUBLE_EQ(policy.backoffMultiplier, 3.0);
    EXPECT_DOUBLE_EQ(policy.maxBackoffSeconds, 400e-6);
    EXPECT_EQ(policy.failover,
              (std::vector<std::string>{"gpu-v100", "tpu-v2"}));
}

TEST_F(FaultTest, EmptySpecDisarms)
{
    auto &injector = FaultInjector::instance();
    ASSERT_TRUE(injector.configure("seed=1; pool.worker_stall=1").ok());
    EXPECT_TRUE(injector.armed());
    ASSERT_TRUE(injector.configure("").ok());
    EXPECT_FALSE(injector.armed());
}

TEST_F(FaultTest, RejectsMalformedSpecsAndKeepsPreviousConfig)
{
    auto &injector = FaultInjector::instance();
    ASSERT_TRUE(injector.configure("seed=9; sram.bank_read=0.25").ok());

    const Status unknown = injector.configure("no.such_site=0.5");
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
    // The error names the offender and lists what is legal.
    EXPECT_NE(unknown.message().find("no.such_site"),
              std::string::npos);
    EXPECT_NE(unknown.message().find(kSramBankRead),
              std::string::npos);

    EXPECT_FALSE(injector.configure("accel.step_timeout=1.5").ok());
    EXPECT_FALSE(injector.configure("accel.step_timeout=abc").ok());
    EXPECT_FALSE(injector.configure("max_attempts=0").ok());
    EXPECT_FALSE(injector.configure("backoff_mult=0.5").ok());
    EXPECT_FALSE(injector.configure("accel.step_timeout@=1").ok());
    EXPECT_FALSE(injector.configure("just-a-token").ok());

    // A failed configure keeps the previous arming.
    EXPECT_TRUE(injector.armed());
    EXPECT_EQ(injector.seed(), 9u);
    EXPECT_DOUBLE_EQ(injector.rate(kSramBankRead, ""), 0.25);
}

TEST_F(FaultTest, DecisionsArePureFunctionsOfSeedSiteScopeKey)
{
    auto &injector = FaultInjector::instance();
    ASSERT_TRUE(
        injector.configure("seed=7; accel.step_timeout=0.5").ok());

    std::vector<bool> first;
    for (std::uint64_t key = 0; key < 64; ++key)
        first.push_back(
            injector.shouldInject(kAccelStepTimeout, "tpu-v2", key));
    // Same spec, same answers — in any order.
    for (std::uint64_t key = 64; key-- > 0;)
        EXPECT_EQ(injector.shouldInject(kAccelStepTimeout, "tpu-v2",
                                        key),
                  first[static_cast<size_t>(key)]);

    // A rate of 0.5 actually splits the keys.
    int hits = 0;
    for (bool b : first)
        hits += b ? 1 : 0;
    EXPECT_GT(hits, 0);
    EXPECT_LT(hits, 64);

    // A different seed yields a different schedule.
    ASSERT_TRUE(
        injector.configure("seed=8; accel.step_timeout=0.5").ok());
    bool differs = false;
    for (std::uint64_t key = 0; key < 64; ++key)
        differs = differs ||
                  injector.shouldInject(kAccelStepTimeout, "tpu-v2",
                                        key) !=
                      first[static_cast<size_t>(key)];
    EXPECT_TRUE(differs);
}

TEST_F(FaultTest, RateEdgesAreDeterministic)
{
    auto &injector = FaultInjector::instance();
    ASSERT_TRUE(injector
                    .configure("seed=3; cache.corrupt=1.0; "
                               "pool.worker_stall=0.0")
                    .ok());
    for (std::uint64_t key = 0; key < 16; ++key) {
        EXPECT_TRUE(injector.shouldInject(kCacheCorrupt, "", key));
        EXPECT_FALSE(injector.shouldInject(kPoolWorkerStall, "", key));
    }
}

TEST_F(FaultTest, InjectCountsPerSite)
{
    auto &injector = FaultInjector::instance();
    ASSERT_TRUE(injector.configure("seed=1; sram.bank_read=1").ok());
    EXPECT_EQ(injector.injectedCount(kSramBankRead), 0u);
    EXPECT_TRUE(injector.inject(kSramBankRead, "", 1));
    EXPECT_TRUE(injector.inject(kSramBankRead, "", 2));
    EXPECT_EQ(injector.injectedCount(kSramBankRead), 2u);
    EXPECT_EQ(injector.injectedCount(kCacheCorrupt), 0u);
}

TEST_F(FaultTest, KnownSitesListsAllFive)
{
    const auto &sites = knownSites();
    ASSERT_EQ(sites.size(), 5u);
    EXPECT_EQ(sites[0], kSramBankRead);
    EXPECT_EQ(sites[1], kAccelStepTimeout);
    EXPECT_EQ(sites[2], kCacheCorrupt);
    EXPECT_EQ(sites[3], kPoolWorkerStall);
    EXPECT_EQ(sites[4], kServeChipDown);
}

} // namespace
} // namespace cfconv::fault
