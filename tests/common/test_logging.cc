/** @file Unit tests for the logging/error-reporting helpers. */

#include <gtest/gtest.h>

#include "common/logging.h"

namespace cfconv {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input %d", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("internal invariant violated"), PanicError);
}

TEST(Logging, FatalMessageIsFormatted)
{
    try {
        fatal("value %d exceeds %s", 7, "limit");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 7 exceeds limit");
    }
}

TEST(Logging, FatalIfMacroRespectsCondition)
{
    EXPECT_NO_THROW(CFCONV_FATAL_IF(false, "never"));
    EXPECT_THROW(CFCONV_FATAL_IF(true, "always"), FatalError);
}

TEST(Logging, AssertMacroRespectsCondition)
{
    EXPECT_NO_THROW(CFCONV_ASSERT(1 + 1 == 2, "(math works)"));
    EXPECT_THROW(CFCONV_ASSERT(1 + 1 == 3, "(math broke)"), PanicError);
}

TEST(Logging, FormatHandlesLongStrings)
{
    const std::string long_str(500, 'x');
    const std::string out = detail::format("%s", long_str.c_str());
    EXPECT_EQ(out.size(), 500u);
}

} // namespace
} // namespace cfconv
