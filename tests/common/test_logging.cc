/** @file Unit tests for the logging/error-reporting helpers. */

#include <gtest/gtest.h>

#include "common/logging.h"

namespace cfconv {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input %d", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("internal invariant violated"), PanicError);
}

TEST(Logging, FatalMessageIsFormatted)
{
    try {
        fatal("value %d exceeds %s", 7, "limit");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 7 exceeds limit");
    }
}

TEST(Logging, FatalIfMacroRespectsCondition)
{
    EXPECT_NO_THROW(CFCONV_FATAL_IF(false, "never"));
    EXPECT_THROW(CFCONV_FATAL_IF(true, "always"), FatalError);
}

TEST(Logging, AssertMacroRespectsCondition)
{
    EXPECT_NO_THROW(CFCONV_ASSERT(1 + 1 == 2, "(math works)"));
    EXPECT_THROW(CFCONV_ASSERT(1 + 1 == 3, "(math broke)"), PanicError);
}

TEST(Logging, FormatHandlesLongStrings)
{
    const std::string long_str(500, 'x');
    const std::string out = detail::format("%s", long_str.c_str());
    EXPECT_EQ(out.size(), 500u);
}

/** Restores the verbosity threshold so tests can't leak a level. */
class LogLevelTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = logLevel(); }
    void TearDown() override { setLogLevel(saved_); }

  private:
    LogLevel saved_ = LogLevel::Info;
};

TEST_F(LogLevelTest, WarnLevelSilencesInformKeepsWarn)
{
    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    inform("should be silenced");
    warn("should still print");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("should be silenced"), std::string::npos);
    EXPECT_NE(err.find("should still print"), std::string::npos);
}

TEST_F(LogLevelTest, ErrorLevelSilencesBothChannels)
{
    setLogLevel(LogLevel::Error);
    ::testing::internal::CaptureStderr();
    inform("status chatter");
    warn("a warning");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogLevelTest, InfoLevelPrintsBothChannels)
{
    setLogLevel(LogLevel::Info);
    ::testing::internal::CaptureStderr();
    inform("status line");
    warn("warning line");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("status line"), std::string::npos);
    EXPECT_NE(err.find("warning line"), std::string::npos);
}

TEST_F(LogLevelTest, FatalIsNeverFiltered)
{
    setLogLevel(LogLevel::Error);
    EXPECT_THROW(fatal("still throws"), FatalError);
}

TEST(LogLevelParse, AcceptsKnownNamesRejectsJunk)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("info", &level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("warn", &level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("error", &level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("quiet", &level));
    EXPECT_EQ(level, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("silent", &level));
    EXPECT_EQ(level, LogLevel::Error);

    level = LogLevel::Warn;
    EXPECT_FALSE(parseLogLevel("verbose", &level));
    EXPECT_FALSE(parseLogLevel("", &level));
    EXPECT_EQ(level, LogLevel::Warn); // unknown names leave *out alone
}

} // namespace
} // namespace cfconv
