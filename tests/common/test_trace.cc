/** @file Unit tests for the Chrome-trace recorder: document validity,
 *  balanced nesting under concurrent writers, and the disabled-mode
 *  zero-event guarantee. */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"

namespace cfconv::trace {
namespace {

/**
 * Minimal recursive-descent JSON syntax checker — enough to assert the
 * emitted document parses (chrome://tracing uses a full parser; any
 * comma/quote slip the hand-built writer makes fails here too).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_; // skip the escaped character
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

size_t
countOccurrences(const std::string &doc, const std::string &needle)
{
    size_t count = 0;
    for (size_t at = doc.find(needle); at != std::string::npos;
         at = doc.find(needle, at + needle.size())) {
        ++count;
    }
    return count;
}

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { resetForTest(); }
    void TearDown() override { resetForTest(); }
};

TEST_F(TraceTest, DisabledModeRecordsNothing)
{
    ASSERT_FALSE(enabled());
    {
        TRACE_SCOPE("test", "should-vanish");
        TRACE_INSTANT("test", "tick");
        TRACE_COUNTER("test", "depth", 3);
        Scope s("test", "manual");
        EXPECT_FALSE(s.active());
    }
    instant("test", "direct-call");
    counter("test", "direct", 1.0);
    simSpan(simTrack("row"), "span", 0, 10);
    EXPECT_EQ(bufferedEventCountForTest(), 0u);
}

TEST_F(TraceTest, WritesValidChromeTraceJson)
{
    const std::string path =
        ::testing::TempDir() + "cfconv_trace_basic.json";
    start(path);
    ASSERT_TRUE(enabled());
    {
        TRACE_SCOPE("test", "outer");
        TRACE_SCOPE_DYN("test", std::string("dyn-") + "name");
        TRACE_INSTANT("test", "tick");
        TRACE_COUNTER("test", "depth", 2);
    }
    const SimTrack row = simTrack("sim row");
    EXPECT_TRUE(row.active());
    simSpan(row, "fill", 0, 128, {{"unit", 0.0}});
    simInstant(row, "hit", 64);
    EXPECT_GT(bufferedEventCountForTest(), 0u);
    ASSERT_TRUE(stop());
    EXPECT_FALSE(enabled());

    const std::string doc = slurp(path);
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    // Both clock domains announce themselves.
    EXPECT_NE(doc.find("wall clock"), std::string::npos);
    EXPECT_NE(doc.find("simulated cycles"), std::string::npos);
    // The recorded events survive the round trip.
    EXPECT_NE(doc.find("\"outer\""), std::string::npos);
    EXPECT_NE(doc.find("\"dyn-name\""), std::string::npos);
    EXPECT_NE(doc.find("\"tick\""), std::string::npos);
    EXPECT_NE(doc.find("\"fill\""), std::string::npos);
    EXPECT_NE(doc.find("\"sim row\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceTest, BalancedNestingUnderConcurrentThreads)
{
    const std::string path =
        ::testing::TempDir() + "cfconv_trace_threads.json";
    start(path);
    constexpr int kThreads = 8;
    constexpr int kIters = 25;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            setThreadName("tester-" + std::to_string(t));
            for (int i = 0; i < kIters; ++i) {
                TRACE_SCOPE("test", "outer");
                TRACE_SCOPE("test", "inner");
                TRACE_COUNTER("test", "iter", i);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    ASSERT_TRUE(stop());

    const std::string doc = slurp(path);
    ASSERT_TRUE(JsonChecker(doc).valid());
    // Every scope on every thread produced exactly one complete event;
    // none were lost to racing buffers.
    EXPECT_EQ(countOccurrences(doc, "\"outer\""),
              static_cast<size_t>(kThreads * kIters));
    EXPECT_EQ(countOccurrences(doc, "\"inner\""),
              static_cast<size_t>(kThreads * kIters));
    EXPECT_EQ(countOccurrences(doc, "\"tester-"),
              static_cast<size_t>(kThreads));
    std::remove(path.c_str());
}

TEST_F(TraceTest, StopIsIdempotentAndRestartDropsOldEvents)
{
    const std::string path =
        ::testing::TempDir() + "cfconv_trace_restart.json";
    start(path);
    instant("test", "from-first-run");
    ASSERT_TRUE(stop());
    EXPECT_TRUE(stop()); // disarmed no-op; nothing rewritten

    start(path);
    instant("test", "from-second-run");
    ASSERT_TRUE(stop());
    const std::string doc = slurp(path);
    ASSERT_TRUE(JsonChecker(doc).valid());
    EXPECT_EQ(doc.find("from-first-run"), std::string::npos);
    EXPECT_NE(doc.find("from-second-run"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceTest, CounterAndInstantCarryChromePhases)
{
    const std::string path =
        ::testing::TempDir() + "cfconv_trace_phases.json";
    start(path);
    counter("test", "queue_depth", 5.0);
    instant("test", "hit");
    {
        TRACE_SCOPE("test", "span");
    }
    ASSERT_TRUE(stop());
    const std::string doc = slurp(path);
    ASSERT_TRUE(JsonChecker(doc).valid());
    EXPECT_NE(doc.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace cfconv::trace
