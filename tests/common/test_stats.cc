/** @file Unit tests for the statistics helpers. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"

namespace cfconv {
namespace {

TEST(Scalar, TracksCountSumMinMaxMean)
{
    Scalar s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Scalar, EmptyIsZero)
{
    Scalar s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Scalar, ResetClearsState)
{
    Scalar s;
    s.sample(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(StatGroup, CountersAccumulate)
{
    StatGroup g;
    g.add("dram_bytes", 100.0);
    g.add("dram_bytes", 50.0);
    EXPECT_DOUBLE_EQ(g.counter("dram_bytes"), 150.0);
    EXPECT_DOUBLE_EQ(g.counter("missing"), 0.0);
}

TEST(StatGroup, ScalarsCollectSamples)
{
    StatGroup g;
    g.sample("latency", 1.0);
    g.sample("latency", 3.0);
    EXPECT_DOUBLE_EQ(g.scalar("latency").mean(), 2.0);
}

TEST(MeanAbsPctError, ComputesExpectedValue)
{
    // |110-100|/100 = 10%, |90-100|/100 = 10% -> mean 10%.
    EXPECT_NEAR(meanAbsPctError({100.0, 100.0}, {110.0, 90.0}), 10.0,
                1e-12);
}

TEST(MeanAbsPctError, RejectsSizeMismatch)
{
    EXPECT_THROW(meanAbsPctError({1.0}, {1.0, 2.0}), FatalError);
}

TEST(MeanAbsPctError, RejectsZeroReference)
{
    EXPECT_THROW(meanAbsPctError({0.0}, {1.0}), FatalError);
}

TEST(GeoMean, ComputesExpectedValue)
{
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
}

TEST(GeoMean, RejectsNonPositive)
{
    EXPECT_THROW(geoMean({1.0, -2.0}), FatalError);
}

} // namespace
} // namespace cfconv
