/** @file Unit tests for the statistics helpers. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stats.h"

namespace cfconv {
namespace {

TEST(Scalar, TracksCountSumMinMaxMean)
{
    Scalar s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Scalar, EmptyIsZero)
{
    Scalar s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Scalar, ResetClearsState)
{
    Scalar s;
    s.sample(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(StatGroup, CountersAccumulate)
{
    StatGroup g;
    g.add("dram_bytes", 100.0);
    g.add("dram_bytes", 50.0);
    EXPECT_DOUBLE_EQ(g.counter("dram_bytes"), 150.0);
    EXPECT_DOUBLE_EQ(g.counter("missing"), 0.0);
}

TEST(StatGroup, ScalarsCollectSamples)
{
    StatGroup g;
    g.sample("latency", 1.0);
    g.sample("latency", 3.0);
    EXPECT_DOUBLE_EQ(g.scalar("latency").mean(), 2.0);
}

TEST(MeanAbsPctError, ComputesExpectedValue)
{
    // |110-100|/100 = 10%, |90-100|/100 = 10% -> mean 10%.
    EXPECT_NEAR(meanAbsPctError({100.0, 100.0}, {110.0, 90.0}), 10.0,
                1e-12);
}

TEST(MeanAbsPctError, RejectsSizeMismatch)
{
    EXPECT_THROW(meanAbsPctError({1.0}, {1.0, 2.0}), FatalError);
}

TEST(MeanAbsPctError, RejectsZeroReference)
{
    EXPECT_THROW(meanAbsPctError({0.0}, {1.0}), FatalError);
}

TEST(GeoMean, ComputesExpectedValue)
{
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
}

TEST(GeoMean, RejectsNonPositive)
{
    EXPECT_THROW(geoMean({1.0, -2.0}), FatalError);
}

// The log histogram quantizes to 8 buckets per octave, so any
// percentile is exact to within one bucket width (2^(1/8), ~9%); the
// geometric-center estimate is half that (~4.4%).
constexpr double kHistRelTol = 0.05;

TEST(ScalarPercentiles, UniformRampHitsExpectedQuantiles)
{
    Scalar s;
    for (int i = 1; i <= 1000; ++i)
        s.sample(static_cast<double>(i));
    EXPECT_NEAR(s.p50(), 500.0, 500.0 * kHistRelTol);
    EXPECT_NEAR(s.p95(), 950.0, 950.0 * kHistRelTol);
    EXPECT_NEAR(s.p99(), 990.0, 990.0 * kHistRelTol);
}

TEST(ScalarPercentiles, TinyLatenciesStayAccurate)
{
    // Microsecond-scale latencies in seconds — well inside the
    // histogram's [2^-34, 2^30) range.
    Scalar s;
    for (int i = 0; i < 100; ++i)
        s.sample(1e-6);
    for (int i = 0; i < 100; ++i)
        s.sample(1e-3);
    EXPECT_NEAR(s.p50(), 1e-6, 1e-6 * kHistRelTol);
    EXPECT_NEAR(s.p99(), 1e-3, 1e-3 * kHistRelTol);
}

TEST(ScalarPercentiles, EmptyAndNonPositiveReportZero)
{
    Scalar s;
    EXPECT_DOUBLE_EQ(s.p50(), 0.0);
    s.sample(0.0);
    s.sample(-3.0);
    // Both samples land in the underflow bucket, reported as 0.
    EXPECT_DOUBLE_EQ(s.p50(), 0.0);
    EXPECT_DOUBLE_EQ(s.p99(), 0.0);
}

TEST(ScalarPercentiles, MixedSignQuantilesSplitAtUnderflow)
{
    Scalar s;
    for (int i = 0; i < 90; ++i)
        s.sample(-1.0); // underflow
    for (int i = 0; i < 10; ++i)
        s.sample(64.0);
    EXPECT_DOUBLE_EQ(s.p50(), 0.0); // still among the underflow mass
    EXPECT_NEAR(s.p99(), 64.0, 64.0 * kHistRelTol);
}

TEST(ScalarPercentiles, ResetClearsHistogram)
{
    Scalar s;
    s.sample(100.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.p99(), 0.0);
    s.sample(2.0);
    EXPECT_NEAR(s.p50(), 2.0, 2.0 * kHistRelTol);
}

TEST(MetricsRegistry, AccumulatesAcrossCallsAndResets)
{
    MetricsRegistry &m = MetricsRegistry::instance();
    m.reset();
    m.add("test.counter", 2.0);
    m.add("test.counter", 3.0);
    for (int i = 1; i <= 100; ++i)
        m.sample("test.latency", static_cast<double>(i));
    const StatGroup snap = m.snapshot();
    EXPECT_DOUBLE_EQ(snap.counter("test.counter"), 5.0);
    const Scalar &s = snap.scalars().at("test.latency");
    EXPECT_EQ(s.count(), 100u);
    EXPECT_NEAR(s.p50(), 50.0, 50.0 * kHistRelTol);
    m.reset();
    EXPECT_TRUE(m.snapshot().counters().empty());
    EXPECT_TRUE(m.snapshot().scalars().empty());
}

} // namespace
} // namespace cfconv
