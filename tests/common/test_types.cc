/** @file Tests for the fundamental type helpers. */

#include <gtest/gtest.h>

#include "common/types.h"

namespace cfconv {
namespace {

TEST(Types, DivCeil)
{
    EXPECT_EQ(divCeil(10, 3), 4);
    EXPECT_EQ(divCeil(9, 3), 3);
    EXPECT_EQ(divCeil(1, 3), 1);
    EXPECT_EQ(divCeil<Bytes>(1025, 1024), 2u);
    EXPECT_EQ(divCeil<Index>(0, 5), 0);
}

TEST(Types, RoundUp)
{
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
    EXPECT_EQ(roundUp(1, 128), 128);
    EXPECT_EQ(roundUp(0, 4), 0);
}

TEST(Types, DataTypeSizes)
{
    EXPECT_EQ(dataTypeSize(DataType::Int8), 1u);
    EXPECT_EQ(dataTypeSize(DataType::Fp16), 2u);
    EXPECT_EQ(dataTypeSize(DataType::Bf16), 2u);
    EXPECT_EQ(dataTypeSize(DataType::Fp32), 4u);
}

TEST(Types, DataTypeNames)
{
    EXPECT_STREQ(dataTypeName(DataType::Int8), "int8");
    EXPECT_STREQ(dataTypeName(DataType::Fp16), "fp16");
    EXPECT_STREQ(dataTypeName(DataType::Bf16), "bf16");
    EXPECT_STREQ(dataTypeName(DataType::Fp32), "fp32");
}

TEST(Types, ConstexprUsable)
{
    static_assert(divCeil(7, 2) == 4);
    static_assert(roundUp(7, 2) == 8);
    static_assert(dataTypeSize(DataType::Bf16) == 2);
    SUCCEED();
}

} // namespace
} // namespace cfconv
