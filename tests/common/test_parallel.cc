/** @file Unit tests for the deterministic thread pool / parallelFor. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace cfconv {
namespace {

/** Restore the default lane count after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        unsetenv("CFCONV_THREADS");
        parallel::setThreads(0);
    }
};

TEST_F(ParallelTest, ChunksCoverRangeExactlyOnce)
{
    parallel::setThreads(4);
    const Index n = 1003;
    std::vector<std::atomic<int>> touched(n);
    for (auto &t : touched)
        t.store(0);
    parallel::parallelFor(0, n, 7, [&](Index b, Index e) {
        ASSERT_LE(0, b);
        ASSERT_LT(b, e);
        ASSERT_LE(e, n);
        for (Index i = b; i < e; ++i)
            touched[static_cast<size_t>(i)].fetch_add(1);
    });
    for (Index i = 0; i < n; ++i)
        EXPECT_EQ(touched[static_cast<size_t>(i)].load(), 1)
            << "index " << i;
}

TEST_F(ParallelTest, NonZeroBeginIsRespected)
{
    parallel::setThreads(3);
    std::atomic<Index> sum{0};
    parallel::parallelFor(10, 20, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i)
            sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 145); // 10 + 11 + ... + 19
}

TEST_F(ParallelTest, EmptyRangeNeverCallsBody)
{
    std::atomic<int> calls{0};
    parallel::parallelFor(5, 5, 1,
                          [&](Index, Index) { calls.fetch_add(1); });
    parallel::parallelFor(7, 3, 1,
                          [&](Index, Index) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, GrainLargerThanRangeRunsInline)
{
    parallel::setThreads(4);
    const auto caller = std::this_thread::get_id();
    std::atomic<int> calls{0};
    parallel::parallelFor(0, 8, 64, [&](Index b, Index e) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 8);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST_F(ParallelTest, SerialModeRunsOnCallerThread)
{
    parallel::setThreads(1);
    EXPECT_EQ(parallel::threads(), 1);
    const auto caller = std::this_thread::get_id();
    parallel::parallelFor(0, 100, 1, [&](Index, Index) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST_F(ParallelTest, ExceptionPropagatesAndPoolStaysUsable)
{
    parallel::setThreads(4);
    EXPECT_THROW(
        parallel::parallelFor(0, 100, 1,
                              [&](Index b, Index) {
                                  if (b >= 50)
                                      throw std::runtime_error("boom");
                              }),
        std::runtime_error);
    // The pool must survive a failed job and run the next one.
    std::atomic<Index> sum{0};
    parallel::parallelFor(0, 100, 1, [&](Index b, Index e) {
        sum.fetch_add(e - b);
    });
    EXPECT_EQ(sum.load(), 100);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock)
{
    parallel::setThreads(4);
    std::atomic<Index> inner_total{0};
    parallel::parallelFor(0, 8, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) {
            // Nested call: must run inline on this worker, not
            // deadlock waiting for pool lanes.
            parallel::parallelFor(0, 10, 1, [&](Index ib, Index ie) {
                inner_total.fetch_add(ie - ib);
            });
        }
    });
    EXPECT_EQ(inner_total.load(), 80);
}

TEST_F(ParallelTest, SetThreadsOverridesAndZeroRestoresDefault)
{
    parallel::setThreads(3);
    EXPECT_EQ(parallel::threads(), 3);
    parallel::setThreads(0);
    EXPECT_GE(parallel::threads(), 1);
}

TEST_F(ParallelTest, EnvVariableSetsDefaultThreadCount)
{
    setenv("CFCONV_THREADS", "2", 1);
    parallel::setThreads(0); // re-read the default
    EXPECT_EQ(parallel::threads(), 2);
}

TEST_F(ParallelTest, ManySmallJobsBackToBack)
{
    parallel::setThreads(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<Index> sum{0};
        parallel::parallelFor(0, 17, 2, [&](Index b, Index e) {
            sum.fetch_add(e - b);
        });
        ASSERT_EQ(sum.load(), 17);
    }
}

} // namespace
} // namespace cfconv
