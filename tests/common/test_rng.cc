/** @file Tests for the deterministic RNG and hash utilities. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace cfconv {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        ASSERT_GE(v, -3.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.below(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all buckets hit
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
              hashCombine(hashCombine(0, 2), 1));
}

TEST(HashCombine, DeterministicAndSpreading)
{
    std::set<std::uint64_t> values;
    for (std::uint64_t i = 0; i < 1000; ++i)
        values.insert(hashCombine(0x1234, i));
    EXPECT_EQ(values.size(), 1000u);
    EXPECT_EQ(hashCombine(5, 7), hashCombine(5, 7));
}

} // namespace
} // namespace cfconv
