/** @file Unit tests for the table/CSV emitter. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/table.h"

namespace cfconv {
namespace {

TEST(Table, CsvRoundTrip)
{
    Table t("demo");
    t.setHeader({"layer", "tflops"});
    t.addRow({"conv1", "12.5"});
    t.addRow({"conv2", "20.0"});
    EXPECT_EQ(t.toCsv(), "layer,tflops\nconv1,12.5\nconv2,20.0\n");
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RowWidthMustMatchHeader)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, RowBeforeHeaderIsFatal)
{
    Table t("demo");
    EXPECT_THROW(t.addRow({"x"}), FatalError);
}

TEST(Table, HeaderAfterRowsIsFatal)
{
    Table t("demo");
    t.setHeader({"a"});
    t.addRow({"1"});
    EXPECT_THROW(t.setHeader({"b"}), FatalError);
}

TEST(Cell, FormatsLikePrintf)
{
    EXPECT_EQ(cell("%.2f", 3.14159), "3.14");
    EXPECT_EQ(cell("%lld", 42LL), "42");
}

} // namespace
} // namespace cfconv
