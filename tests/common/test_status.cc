/** @file Tests for Status / StatusOr structured error propagation. */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/logging.h"
#include "common/status.h"

namespace cfconv {
namespace {

TEST(Status, DefaultIsOk)
{
    const Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kOk);
    EXPECT_EQ(s.message(), "");
    EXPECT_EQ(s.toString(), "OK");
    EXPECT_EQ(s, okStatus());
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    const Status s = invalidArgumentError("bad stride %d", 0);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(s.message(), "bad stride 0");
    EXPECT_EQ(s.toString(), "INVALID_ARGUMENT: bad stride 0");
}

TEST(Status, ContextChainsFrontToBack)
{
    const Status s = deadlineExceededError("step timed out")
                         .withContext("layer conv1")
                         .withContext("runModel 'ResNet'");
    EXPECT_EQ(s.message(),
              "runModel 'ResNet': layer conv1: step timed out");
    // Context on OK is a no-op.
    EXPECT_EQ(okStatus().withContext("anything"), okStatus());
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::kOk), "OK");
    EXPECT_STREQ(statusCodeName(StatusCode::kInvalidArgument),
                 "INVALID_ARGUMENT");
    EXPECT_STREQ(statusCodeName(StatusCode::kNotFound), "NOT_FOUND");
    EXPECT_STREQ(statusCodeName(StatusCode::kDeadlineExceeded),
                 "DEADLINE_EXCEEDED");
    EXPECT_STREQ(statusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
    EXPECT_STREQ(statusCodeName(StatusCode::kUnavailable),
                 "UNAVAILABLE");
    EXPECT_STREQ(statusCodeName(StatusCode::kResourceExhausted),
                 "RESOURCE_EXHAUSTED");
    EXPECT_STREQ(statusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(Status, RetryableTaxonomy)
{
    // Transient failures are worth retrying...
    EXPECT_TRUE(isRetryable(StatusCode::kDeadlineExceeded));
    EXPECT_TRUE(isRetryable(StatusCode::kDataLoss));
    EXPECT_TRUE(isRetryable(StatusCode::kUnavailable));
    EXPECT_TRUE(isRetryable(StatusCode::kResourceExhausted));
    // ...deterministic ones fail identically on every attempt.
    EXPECT_FALSE(isRetryable(StatusCode::kOk));
    EXPECT_FALSE(isRetryable(StatusCode::kInvalidArgument));
    EXPECT_FALSE(isRetryable(StatusCode::kNotFound));
    EXPECT_FALSE(isRetryable(StatusCode::kInternal));
}

TEST(StatusOr, HoldsValue)
{
    const StatusOr<int> v = 42;
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 42);
    EXPECT_EQ(*v, 42);
    EXPECT_EQ(v.valueOr(-1), 42);
    EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError)
{
    const StatusOr<int> v = notFoundError("no such backend");
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(v.valueOr(-1), -1);
    EXPECT_THROW(v.value(), PanicError);
}

TEST(StatusOr, MoveOnlyValues)
{
    StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
    ASSERT_TRUE(v.ok());
    std::unique_ptr<int> taken = std::move(v).value();
    ASSERT_NE(taken, nullptr);
    EXPECT_EQ(*taken, 7);
}

TEST(StatusOr, OkStatusWithoutValuePanics)
{
    EXPECT_THROW((StatusOr<int>{okStatus()}), PanicError);
}

StatusOr<int>
parsePositive(int v)
{
    if (v <= 0)
        return invalidArgumentError("want positive, got %d", v);
    return v;
}

Status
useMacros(int v, int *out)
{
    CFCONV_RETURN_IF_ERROR(okStatus());
    CFCONV_ASSIGN_OR_RETURN(const int parsed, parsePositive(v));
    *out = parsed * 2;
    return okStatus();
}

TEST(StatusOr, MacrosPropagate)
{
    int out = 0;
    EXPECT_TRUE(useMacros(21, &out).ok());
    EXPECT_EQ(out, 42);
    const Status bad = useMacros(-1, &out);
    EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(out, 42); // untouched on the error path
}

} // namespace
} // namespace cfconv
