/** @file Tests for the vector-unit (non-GEMM layer) timing model. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tpusim/tpu_sim.h"
#include "tpusim/vector_unit.h"

namespace cfconv::tpusim {
namespace {

using tensor::makeConv;

TEST(VectorUnit, ThroughputIsAlusPerCycle)
{
    const TpuConfig tpu = TpuConfig::tpuV2();
    const VectorUnitConfig vu{};
    // 256k ReLU elements over 256 ALUs: 1000 cycles.
    const auto r =
        vectorOpTiming(tpu, vu, VectorOp::Relu, 256 * 1000);
    EXPECT_EQ(r.cycles, 1000u);
    EXPECT_NEAR(r.seconds, 1000.0 / 0.7e9, 1e-12);
}

TEST(VectorUnit, OpCostsAreOrdered)
{
    const TpuConfig tpu = TpuConfig::tpuV2();
    const VectorUnitConfig vu{};
    const Index n = 1 << 20;
    const Cycles relu =
        vectorOpTiming(tpu, vu, VectorOp::Relu, n).cycles;
    const Cycles bn =
        vectorOpTiming(tpu, vu, VectorOp::BatchNorm, n).cycles;
    const Cycles pool =
        vectorOpTiming(tpu, vu, VectorOp::MaxPool, n, 9).cycles;
    EXPECT_LT(relu, bn);
    EXPECT_LT(bn, pool);
}

TEST(VectorUnit, PoolScalesWithWindow)
{
    const TpuConfig tpu = TpuConfig::tpuV2();
    const VectorUnitConfig vu{};
    const Index n = 1 << 18;
    const Cycles w4 =
        vectorOpTiming(tpu, vu, VectorOp::AvgPool, n, 4).cycles;
    const Cycles w9 =
        vectorOpTiming(tpu, vu, VectorOp::AvgPool, n, 9).cycles;
    EXPECT_NEAR(static_cast<double>(w9) / static_cast<double>(w4),
                9.0 / 4.0, 0.05);
}

TEST(VectorUnit, NonGemmLayersAreSmallAdditiveCost)
{
    // The Sec. IV-A payoff: with no layout skew/restore, BN + ReLU add
    // only a few percent to a conv block.
    const TpuConfig tpu = TpuConfig::tpuV2();
    const VectorUnitConfig vu{};
    const auto conv = makeConv(8, 256, 28, 256, 3, 1, 1);
    TpuSim sim(tpu);
    const double conv_only = sim.runConv(conv).seconds;
    const double block = convBlockSeconds(tpu, vu, conv);
    EXPECT_GT(block, conv_only);
    EXPECT_LT(block, 1.10 * conv_only);
}

TEST(VectorUnit, PoolingBlockStillConvDominated)
{
    const TpuConfig tpu = TpuConfig::tpuV2();
    const VectorUnitConfig vu{};
    const auto conv = makeConv(8, 64, 56, 64, 3, 1, 1);
    TpuSim sim(tpu);
    const double conv_only = sim.runConv(conv).seconds;
    const double block =
        convBlockSeconds(tpu, vu, conv, /*with_pool=*/true, 4);
    EXPECT_LT(block, 1.25 * conv_only);
}

TEST(VectorUnit, RejectsBadInputs)
{
    const TpuConfig tpu = TpuConfig::tpuV2();
    const VectorUnitConfig vu{};
    EXPECT_THROW(vectorOpTiming(tpu, vu, VectorOp::Relu, 0),
                 FatalError);
    EXPECT_THROW(vectorOpTiming(tpu, vu, VectorOp::MaxPool, 10, 0),
                 FatalError);
    VectorUnitConfig bad;
    bad.alus = 0;
    EXPECT_THROW(vectorOpTiming(tpu, bad, VectorOp::Relu, 10),
                 FatalError);
}

} // namespace
} // namespace cfconv::tpusim
