/** @file Behavioural tests for the tile-level TPU simulator. */

#include <gtest/gtest.h>

#include "common/logging.h"

#include "models/model_zoo.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tpusim {
namespace {

using tensor::makeConv;

TpuSim
sim()
{
    return TpuSim(TpuConfig::tpuV2());
}

TEST(TpuConfig, Tpuv2Parameters)
{
    const TpuConfig c = TpuConfig::tpuV2();
    EXPECT_EQ(c.array.rows, 128);
    EXPECT_EQ(c.perArrayBytes(), 256u * 1024);
    EXPECT_NEAR(c.peakTflops(), 22.9, 0.2);
    EXPECT_NEAR(c.dram.peakGBps(), 700.0, 10.0);
}

TEST(TpuSim, GemmLargeAlignedIsNearPeak)
{
    const TpuLayerResult r = sim().runGemm(8192, 8192, 8192);
    EXPECT_GT(r.tflops, 0.85 * TpuConfig::tpuV2().peakTflops());
    EXPECT_GT(r.arrayUtilization, 0.85);
}

TEST(TpuSim, GemmSmallDimensionsLoseUtilization)
{
    const TpuLayerResult small = sim().runGemm(256, 64, 64);
    EXPECT_LT(small.arrayUtilization, 0.3);
}

TEST(TpuSim, GemmCyclesGrowWithEveryDimension)
{
    TpuSim s = sim();
    const Cycles base = s.runGemm(1024, 512, 512).cycles;
    EXPECT_GT(s.runGemm(2048, 512, 512).cycles, base);
    EXPECT_GT(s.runGemm(1024, 1024, 512).cycles, base);
    EXPECT_GT(s.runGemm(1024, 512, 1024).cycles, base);
}

TEST(TpuSim, ChannelFirstIsStrideInsensitive)
{
    // Fig 4b: TFLOPS per useful FLOP stays roughly flat across strides.
    TpuSim s = sim();
    ConvParams p1 = makeConv(64, 128, 28, 128, 3, 1, 1);
    ConvParams p2 = makeConv(64, 128, 28, 128, 3, 2, 1);
    ConvParams p4 = makeConv(64, 128, 28, 128, 3, 4, 1);
    const double t1 = s.runConv(p1).tflops;
    const double t2 = s.runConv(p2).tflops;
    const double t4 = s.runConv(p4).tflops;
    EXPECT_GT(t2, 0.8 * t1);
    EXPECT_GT(t4, 0.6 * t1);
}

TEST(TpuSim, MultiTileParameterFollowsStrategy)
{
    TpuSim s = sim();
    const ConvParams p = makeConv(8, 8, 128, 128, 3, 1, 1);
    EXPECT_EQ(s.runConv(p).multiTile, 3); // MIN(128/8, 3)
    const ConvParams p2 = makeConv(8, 64, 56, 128, 5, 1, 2);
    EXPECT_EQ(s.runConv(p2).multiTile, 2); // MIN(128/64, 5)
    const ConvParams p3 = makeConv(8, 256, 28, 128, 3, 1, 1);
    EXPECT_EQ(s.runConv(p3).multiTile, 1); // C_I > 128
}

TEST(TpuSim, MultiTileImprovesSmallChannelLayers)
{
    // Fig 14a: more tiles -> better performance, diminishing returns,
    // and linearly growing workspace.
    TpuSim s = sim();
    const ConvParams p = makeConv(8, 8, 128, 128, 3, 1, 1);
    TpuRunOptions o;
    o.multiTileOverride = 1;
    const TpuLayerResult r1 = s.runConv(p, o);
    o.multiTileOverride = 2;
    const TpuLayerResult r2 = s.runConv(p, o);
    o.multiTileOverride = 3;
    const TpuLayerResult r3 = s.runConv(p, o);
    EXPECT_GT(r2.tflops, 1.5 * r1.tflops);
    EXPECT_GT(r3.tflops, r2.tflops);
    EXPECT_GT(r2.peakOnChipBytes, r1.peakOnChipBytes);
    EXPECT_GT(r3.peakOnChipBytes, r2.peakOnChipBytes);
}

TEST(TpuSim, MultiTileCappedByKernelWidth)
{
    TpuSim s = sim();
    const ConvParams p = makeConv(8, 8, 64, 64, 3, 1, 1);
    TpuRunOptions o;
    o.multiTileOverride = 100; // absurd: must clip to H_F*W_F and rows
    const TpuLayerResult r = s.runConv(p, o);
    EXPECT_LE(r.multiTile, 9);
}

TEST(TpuSim, ImplicitConvMatchesEquivalentGemmAcrossStrides)
{
    // The Fig 4b shape: on the TPU, the implicit channel-first method
    // performs like a GEMM of the lowered-matrix size at every stride
    // (near-zero lowering overhead), unlike the GPU's baseline.
    TpuSim s = sim();
    for (Index stride : {1, 2, 4}) {
        const ConvParams p = makeConv(64, 64, 112, 64, 3, stride, 1);
        const TpuLayerResult conv = s.runConv(p);
        const TpuLayerResult gemm =
            s.runGemm(p.gemmM(), p.gemmK(), p.gemmN(), p.dataType);
        EXPECT_NEAR(conv.tflops / gemm.tflops, 1.0, 0.25)
            << "stride " << stride;
    }
}

TEST(TpuSim, ExplicitSlowerThanImplicit)
{
    // Fig 2b: explicit = GEMM time + transform time > implicit.
    TpuSim s = sim();
    const ConvParams p = makeConv(64, 64, 56, 64, 3, 1, 1);
    TpuRunOptions ex;
    ex.algorithm = ConvAlgorithm::Explicit;
    const double implicit_sec = s.runConv(p).seconds;
    const TpuLayerResult explicit_r = s.runConv(p, ex);
    EXPECT_GT(explicit_r.seconds, implicit_sec);
}

TEST(TpuSim, DetailedAndClosedFormDramAgreeRoughly)
{
    TpuSim s = sim();
    const ConvParams p = makeConv(8, 64, 56, 64, 3, 1, 1);
    TpuRunOptions detailed;
    detailed.detailedDram = true;
    TpuRunOptions closed;
    closed.detailedDram = false;
    const double a = s.runConv(p, detailed).seconds;
    const double b = s.runConv(p, closed).seconds;
    EXPECT_NEAR(a / b, 1.0, 0.25);
}

TEST(TpuSim, PortUtilizationBelowHalfAtWord8)
{
    // The Fig 16b observation: with 8-element words the vector-memory
    // port is busy well under 50% of cycles.
    TpuSim s = sim();
    const ConvParams p = makeConv(8, 128, 56, 128, 3, 1, 1);
    const TpuLayerResult r = s.runConv(p);
    EXPECT_LT(r.portUtilization, 0.5);
    EXPECT_GT(r.portUtilization, 0.0);
}

TEST(TpuSim, RunModelAggregatesLayers)
{
    TpuSim s = sim();
    const models::ModelSpec m = models::alexnet(8);
    const TpuModelResult r = s.runModel(m);
    EXPECT_EQ(r.layers.size(), m.layers.size());
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.tflops, 0.5);
    EXPECT_LT(r.tflops, TpuConfig::tpuV2().peakTflops());
}

TEST(TpuSim, DramTrafficFollowsResidency)
{
    TpuSim s = sim();
    // Small layer: activations stay on chip, only weights stream.
    const ConvParams small = makeConv(8, 128, 28, 128, 3, 1, 1);
    EXPECT_EQ(s.runConv(small).dramBytes, small.filterBytes());
    // Large layer (activations exceed 32 MB): operands stream and the
    // OFMap is written back.
    const ConvParams big = makeConv(64, 64, 112, 64, 3, 1, 1);
    EXPECT_GT(s.runConv(big).dramBytes,
              big.filterBytes() + big.outputBytes());
}

TEST(TpuSim, RejectsBadGemm)
{
    EXPECT_THROW(sim().runGemm(0, 128, 128), FatalError);
}

} // namespace
} // namespace cfconv::tpusim
