/** @file Functional TPU core tests: Fig 10's dataflow, exactly. */

#include <gtest/gtest.h>

#include "tensor/conv_ref.h"
#include "tpusim/functional_core.h"

namespace cfconv::tpusim {
namespace {

using tensor::makeConv;
using tensor::makeFilter;
using tensor::makeInput;

TEST(FunctionalCore, Fig10Configuration)
{
    // Fig 10: N = 2, C_I = 4, H_I = W_I = 5, H_F = W_F = 3 on a 4x4
    // array with word size 2, executing tile-by-tile.
    const ConvParams p = makeConv(2, 4, 5, 4, 3);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(301);
    filter.fillRandom(302);

    FunctionalTpuCore core(4, 4, 2);
    const FunctionalRunResult r = core.runConv(p, input, filter, 1);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(r.output.maxAbsDiff(ref), 1e-3f);
    EXPECT_FALSE(r.portConflict);
    EXPECT_GT(r.vecMemReads, 0);
    EXPECT_GT(r.vecMemWrites, 0);
}

TEST(FunctionalCore, Fig11MultiTileConfiguration)
{
    // Fig 11: C_I = 2 on a 4x4 array -> two tiles merged per pass.
    const ConvParams p = makeConv(2, 2, 5, 4, 3);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(303);
    filter.fillRandom(304);

    FunctionalTpuCore core(4, 4, 2);
    const FunctionalRunResult single = core.runConv(p, input, filter, 1);
    const FunctionalRunResult merged = core.runConv(p, input, filter, 2);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(single.output.maxAbsDiff(ref), 1e-3f);
    EXPECT_LT(merged.output.maxAbsDiff(ref), 1e-3f);
    // Multi-tile halves the number of passes, so it uses fewer cycles.
    EXPECT_LT(merged.cycles, single.cycles);
    EXPECT_FALSE(merged.portConflict);
}

struct CoreCase
{
    Index batch, ci, hw, co, k, s, p;
    Index word, tiles;
};

class FunctionalCoreSweep : public ::testing::TestWithParam<CoreCase>
{
};

TEST_P(FunctionalCoreSweep, MatchesDirectConvWithoutPortConflicts)
{
    const CoreCase c = GetParam();
    const ConvParams p =
        makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(305);
    filter.fillRandom(306);

    FunctionalTpuCore core(8, 8, c.word);
    const FunctionalRunResult r =
        core.runConv(p, input, filter, c.tiles);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(r.output.maxAbsDiff(ref), 1e-3f) << p.toString();
    EXPECT_FALSE(r.portConflict) << p.toString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunctionalCoreSweep,
    ::testing::Values(CoreCase{1, 8, 5, 8, 3, 1, 0, 2, 1},
                      CoreCase{2, 4, 5, 8, 3, 1, 1, 2, 2},
                      CoreCase{4, 2, 6, 4, 3, 2, 1, 4, 4},
                      CoreCase{2, 8, 7, 6, 3, 2, 1, 8, 1},
                      CoreCase{1, 4, 8, 8, 5, 1, 2, 2, 2},
                      CoreCase{8, 2, 5, 4, 1, 1, 0, 8, 1},
                      CoreCase{2, 3, 6, 5, 2, 2, 0, 2, 2}));

TEST(FunctionalCore, SerializerWordSizeDoesNotChangeResults)
{
    const ConvParams p = makeConv(2, 4, 6, 4, 3, 1, 1);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(307);
    filter.fillRandom(308);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    for (Index word : {1, 2, 4, 8}) {
        FunctionalTpuCore core(4, 4, word);
        const FunctionalRunResult r = core.runConv(p, input, filter, 1);
        EXPECT_LT(r.output.maxAbsDiff(ref), 1e-3f) << "word " << word;
        EXPECT_FALSE(r.portConflict) << "word " << word;
    }
}

TEST(FunctionalCore, WiderWordsReduceReadCount)
{
    const ConvParams p = makeConv(4, 4, 6, 4, 3, 1, 1);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(309);
    filter.fillRandom(310);
    FunctionalTpuCore narrow(4, 4, 1);
    FunctionalTpuCore wide(4, 4, 8);
    const auto rn = narrow.runConv(p, input, filter, 1);
    const auto rw = wide.runConv(p, input, filter, 1);
    EXPECT_GT(rn.vecMemReads, 6 * rw.vecMemReads);
}

TEST(FunctionalCore, RejectsOversizedProblems)
{
    const ConvParams p = makeConv(1, 16, 5, 4, 3);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    FunctionalTpuCore core(8, 8, 2);
    EXPECT_THROW(core.runConv(p, input, filter, 1), FatalError);

    const ConvParams wide_out = makeConv(1, 4, 5, 16, 3);
    tensor::Tensor in2 = makeInput(wide_out);
    tensor::Tensor f2 = makeFilter(wide_out);
    EXPECT_THROW(core.runConv(wide_out, in2, f2, 1), FatalError);
}

} // namespace
} // namespace cfconv::tpusim
