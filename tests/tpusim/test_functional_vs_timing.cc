/** @file Cross-validation: the functional TPU core's cycle counts must
 *  match the closed-form pass timing the tile-level simulator uses. */

#include <gtest/gtest.h>

#include "im2col/multi_tile.h"
#include "systolic/systolic_timing.h"
#include "tensor/conv_ref.h"
#include "tpusim/functional_core.h"

namespace cfconv::tpusim {
namespace {

using tensor::makeConv;

struct TimingCase
{
    Index batch, ci, hw, co, k;
    Index rows, cols, word, tiles;
};

class FunctionalTiming : public ::testing::TestWithParam<TimingCase>
{
};

TEST_P(FunctionalTiming, CyclesMatchClosedFormPassSum)
{
    const TimingCase c = GetParam();
    const auto p = makeConv(c.batch, c.ci, c.hw, c.co, c.k);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(131);
    filter.fillRandom(137);

    FunctionalTpuCore core(c.rows, c.cols, c.word);
    const auto result = core.runConv(p, input, filter, c.tiles);

    // Closed form: one pass per multi-tile group, each streaming all
    // M rows through a (T*C_I x C_O) weight block.
    systolic::SystolicConfig cfg;
    cfg.rows = c.rows;
    cfg.cols = c.cols;
    const auto plan = im2col::planMultiTile(p, c.tiles);
    Cycles expected = 0;
    for (const auto &group : plan.groups)
        expected += systolic::passCycles(cfg, p.gemmM(),
                                         group.mergedK(p), p.gemmN());
    EXPECT_EQ(result.cycles, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunctionalTiming,
    ::testing::Values(TimingCase{1, 4, 5, 4, 3, 4, 4, 2, 1},
                      TimingCase{2, 2, 5, 4, 3, 4, 4, 2, 2},
                      TimingCase{1, 8, 6, 8, 3, 8, 8, 4, 1},
                      TimingCase{2, 2, 6, 6, 2, 8, 8, 2, 4},
                      TimingCase{1, 3, 5, 5, 3, 8, 8, 1, 2}));

TEST(FunctionalTiming, MultiTileCutsCyclesProportionally)
{
    // Merging T tiles reduces the pass count by ~T (Fig 11 doubles
    // utilization at T = 2).
    const auto p = makeConv(2, 2, 6, 4, 3);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(139);
    filter.fillRandom(149);
    FunctionalTpuCore core(8, 8, 2);
    const auto t1 = core.runConv(p, input, filter, 1);
    const auto t3 = core.runConv(p, input, filter, 3);
    const double ratio = static_cast<double>(t1.cycles) /
                         static_cast<double>(t3.cycles);
    EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(FunctionalTiming, ReadsScaleWithGroupCount)
{
    // Each pass re-reads its operand lanes from the vector memories;
    // word reads = sum over groups of lanes * ceil(M / word).
    const auto p = makeConv(1, 2, 5, 2, 3);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(151);
    filter.fillRandom(157);
    FunctionalTpuCore core(8, 8, 2);
    const auto r = core.runConv(p, input, filter, 2);
    const auto plan = im2col::planMultiTile(p, 2);
    Index expected_reads = 0;
    for (const auto &g : plan.groups)
        expected_reads += g.mergedK(p) * divCeil(p.gemmM(), Index{2});
    EXPECT_EQ(r.vecMemReads, expected_reads);
}

} // namespace
} // namespace cfconv::tpusim
