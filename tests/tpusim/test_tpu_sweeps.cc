/** @file Parameterized property sweeps over the TPU simulator:
 *  monotonicity, stride insensitivity, residency, and the
 *  space-to-depth stem rewrite. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tensor/space_to_depth.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tpusim {
namespace {

using tensor::makeConv;

class TpuStrideSweep : public ::testing::TestWithParam<Index>
{
};

TEST_P(TpuStrideSweep, ImplicitStaysWithinQuarterOfGemm)
{
    // Fig 4b as a property: at every stride the implicit conv is
    // within 25% of the equivalent-GEMM throughput.
    const Index stride = GetParam();
    TpuSim sim((TpuConfig::tpuV2()));
    const auto p = makeConv(32, 128, 56, 128, 3, stride, 1);
    const double conv = sim.runConv(p).tflops;
    const double gemm =
        sim.runGemm(p.gemmM(), p.gemmK(), p.gemmN(), p.dataType)
            .tflops;
    EXPECT_GT(conv, 0.75 * gemm) << "stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, TpuStrideSweep,
                         ::testing::Values(1, 2, 3, 4));

class TpuChannelSweep : public ::testing::TestWithParam<Index>
{
};

TEST_P(TpuChannelSweep, MultiTileKeepsSmallChannelsEfficient)
{
    // Without multi-tile, C_I = 4 would waste 97% of the rows; with
    // the strategy, per-FLOP efficiency degrades gracefully.
    const Index ci = GetParam();
    TpuSim sim((TpuConfig::tpuV2()));
    const auto p = makeConv(8, ci, 64, 128, 3, 1, 1);
    const auto r = sim.runConv(p);
    const Index expected =
        im2col::tpuMultiTileParam(128, p);
    EXPECT_EQ(r.multiTile, expected);
    // Occupied rows per pass: T * C_I; achieved utilization should be
    // a healthy fraction of that occupancy (the rest is pipeline fill
    // and column quantization).
    const double occupancy =
        static_cast<double>(r.multiTile * ci) / 128.0;
    EXPECT_GE(r.arrayUtilization, 0.5 * occupancy);
    EXPECT_LE(r.arrayUtilization, occupancy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Channels, TpuChannelSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

TEST(TpuSweeps, CyclesMonotonicInBatch)
{
    TpuSim sim((TpuConfig::tpuV2()));
    Cycles prev = 0;
    for (Index batch : {1L, 2L, 4L, 8L, 16L}) {
        const auto r =
            sim.runConv(makeConv(batch, 64, 28, 64, 3, 1, 1));
        EXPECT_GT(r.cycles, prev) << "batch " << batch;
        prev = r.cycles;
    }
}

TEST(TpuSweeps, CyclesMonotonicInKernelSize)
{
    TpuSim sim((TpuConfig::tpuV2()));
    Cycles prev = 0;
    for (Index k : {1L, 3L, 5L, 7L}) {
        const auto r =
            sim.runConv(makeConv(8, 128, 28, 128, k, 1, k / 2));
        EXPECT_GT(r.cycles, prev) << "kernel " << k;
        prev = r.cycles;
    }
}

TEST(TpuSweeps, BiggerArraysNeverSlower)
{
    const auto p = makeConv(8, 128, 56, 256, 3, 1, 1);
    double prev = 1e30;
    for (Index size : {64L, 128L, 256L}) {
        TpuConfig cfg = TpuConfig::tpuV2();
        cfg.array.rows = cfg.array.cols = size;
        cfg.vectorMemories = size;
        const double secs = TpuSim(cfg).runConv(p).seconds;
        EXPECT_LE(secs, prev * 1.02) << "array " << size;
        prev = secs;
    }
}

TEST(TpuSweeps, UtilizationFallsWithArraySize)
{
    // The Fig 16a property behind TPU-v2's choice of 128.
    const auto p = makeConv(8, 128, 56, 256, 3, 1, 1);
    double prev = 1.0;
    for (Index size : {128L, 256L, 512L}) {
        TpuConfig cfg = TpuConfig::tpuV2();
        cfg.array.rows = cfg.array.cols = size;
        cfg.vectorMemories = size;
        const double util = TpuSim(cfg).runConv(p).arrayUtilization;
        EXPECT_LT(util, prev) << "array " << size;
        prev = util;
    }
}

TEST(TpuSweeps, SpaceToDepthAcceleratesShallowStems)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto conv1 = makeConv(8, 3, 224, 64, 7, 2, 3);
    TpuRunOptions s2d;
    s2d.spaceToDepthFirstLayer = true;
    const double plain = sim.runConv(conv1).seconds;
    const double rewritten = sim.runConv(conv1, s2d).seconds;
    EXPECT_LT(rewritten, 0.6 * plain);
}

TEST(TpuSweeps, SpaceToDepthLeavesDeepLayersAlone)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto deep = makeConv(8, 64, 56, 64, 3, 2, 1);
    TpuRunOptions s2d;
    s2d.spaceToDepthFirstLayer = true;
    EXPECT_DOUBLE_EQ(sim.runConv(deep, s2d).seconds,
                     sim.runConv(deep).seconds);
}

TEST(TpuSweeps, TraceExposesTheDoubleBufferedSchedule)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto p = makeConv(8, 8, 56, 128, 3, 1, 1);
    TpuRunOptions o;
    o.captureTrace = true;
    const auto r = sim.runConv(p, o);
    // 9 taps at T = 3 -> 3 groups; M = 8*56*56 fits one M tile.
    ASSERT_EQ(r.trace.size(), 3u);
    Cycles compute_sum = 0, fill_sum = 0;
    for (const auto &u : r.trace) {
        compute_sum += u.compute;
        fill_sum += u.fill;
    }
    EXPECT_EQ(compute_sum, r.computeCycles);
    EXPECT_EQ(fill_sum, r.fillCycles);
    // Resident layer: no DRAM fills at all.
    EXPECT_EQ(fill_sum, 0u);
    // The schedule identity: cycles = overhead + fill0 +
    // sum(max(compute_i, fill_{i+1})).
    Cycles expect = sim.config().invokeOverheadCycles +
                    r.trace.front().fill;
    for (size_t i = 0; i < r.trace.size(); ++i) {
        const Cycles next =
            i + 1 < r.trace.size() ? r.trace[i + 1].fill : 0;
        expect += std::max(r.trace[i].compute, next);
    }
    EXPECT_EQ(r.cycles, expect);
}

TEST(TpuSweeps, TraceOffByDefault)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto r = sim.runConv(makeConv(8, 8, 64, 64, 3, 1, 1));
    EXPECT_TRUE(r.trace.empty());
}

TEST(TpuSweeps, StreamedLayerTraceShowsPerTileFills)
{
    TpuSim sim((TpuConfig::tpuV2()));
    // Batch 64 at 112x112x64 exceeds the 32 MB on-chip memory.
    const auto p = makeConv(64, 64, 112, 64, 3, 1, 1);
    TpuRunOptions o;
    o.captureTrace = true;
    const auto r = sim.runConv(p, o);
    ASSERT_GT(r.trace.size(), 1u);
    for (const auto &u : r.trace)
        EXPECT_GT(u.fill, 0u);
}

TEST(TpuSweeps, HigherBandwidthNeverSlower)
{
    const auto p = makeConv(64, 64, 112, 64, 3, 1, 1); // streamed
    TpuConfig slow = TpuConfig::tpuV2();
    slow.dram.clockGhz *= 0.5;
    TpuConfig fast = TpuConfig::tpuV2();
    EXPECT_LE(TpuSim(fast).runConv(p).seconds,
              TpuSim(slow).runConv(p).seconds);
}

TEST(TpuSweeps, GroupedConvPacksBlockDiagonally)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto base = makeConv(8, 128, 28, 128, 3, 1, 1);
    // groups = 1 degenerates to runConv.
    EXPECT_DOUBLE_EQ(sim.runGroupedConv(base, 1).seconds,
                     sim.runConv(base).seconds);
    // Depthwise (G = 128): pack = 128 slices per pass; the layer costs
    // no more wall clock than the dense one (same pass structure) but
    // utilization collapses to ~1/128 of it.
    const auto dense = sim.runConv(base);
    const auto dw = sim.runGroupedConv(base, 128);
    EXPECT_LE(dw.seconds, dense.seconds * 1.001);
    EXPECT_LT(dw.arrayUtilization, 0.02);
    // Intermediate grouping degrades gracefully.
    const auto g4 = sim.runGroupedConv(base, 4);
    EXPECT_GT(g4.tflops, dw.tflops);
    EXPECT_LT(g4.tflops, dense.tflops);
}

TEST(TpuSweeps, SecondMxuNearlyDoublesThroughputAtWord8)
{
    // Fig 16b's closing insight: with 8-element words the port is
    // mostly idle, so a second systolic array (TPU-v3) nearly doubles
    // throughput.
    TpuConfig one = TpuConfig::tpuV2();
    TpuConfig two = TpuConfig::tpuV2();
    two.mxus = 2;
    const auto p = makeConv(8, 128, 56, 256, 3, 1, 1);
    const double t1 = TpuSim(one).runConv(p).seconds;
    const double t2 = TpuSim(two).runConv(p).seconds;
    EXPECT_GT(t1 / t2, 1.7);
    EXPECT_LE(t1 / t2, 2.05);
}

TEST(TpuSweeps, NarrowWordsStarveTheSecondMxu)
{
    // With 1-element words the single port is already saturated
    // feeding one array; a second MXU gains little.
    TpuConfig one = TpuConfig::tpuV2();
    one.wordElems = 1;
    TpuConfig two = one;
    two.mxus = 2;
    const auto p = makeConv(8, 128, 56, 256, 3, 1, 1);
    const double t1 = TpuSim(one).runConv(p).seconds;
    const double t2 = TpuSim(two).runConv(p).seconds;
    EXPECT_LT(t1 / t2, 1.3);
}

TEST(TpuSweeps, MxuCountScalesPeak)
{
    TpuConfig two = TpuConfig::tpuV2();
    two.mxus = 2;
    EXPECT_NEAR(two.peakTflops(),
                2.0 * TpuConfig::tpuV2().peakTflops(), 1e-9);
}

TEST(TpuSweeps, GroupedConvRejectsIndivisibleChannels)
{
    TpuSim sim((TpuConfig::tpuV2()));
    EXPECT_THROW(sim.runGroupedConv(makeConv(8, 96, 28, 96, 3, 1, 1),
                                    5),
                 FatalError);
}

TEST(TpuSweeps, DilationInsensitivityMirrorsStride)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const double d1 =
        sim.runConv(makeConv(8, 64, 56, 128, 3, 1, 1, 1)).tflops;
    const double d4 =
        sim.runConv(makeConv(8, 64, 56, 128, 3, 1, 4, 4)).tflops;
    EXPECT_GT(d4, 0.75 * d1);
}

} // namespace
} // namespace cfconv::tpusim
