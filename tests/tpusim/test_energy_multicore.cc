/** @file Tests for the energy model and multi-core model runs. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "models/model_zoo.h"
#include "sram/energy_model.h"
#include "tpusim/energy.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tpusim {
namespace {

using tensor::makeConv;

TEST(SramEnergy, PerByteEnergyFallsWithWordSize)
{
    sram::SramEnergyModel model;
    const Bytes cap = 256 * 1024;
    double prev = model.perBytePj(cap, 1);
    for (Index w : {2L, 4L, 8L, 16L}) {
        const double cur = model.perBytePj(cap, w);
        EXPECT_LT(cur, prev) << "word " << w;
        prev = cur;
    }
}

TEST(SramEnergy, AccessEnergyGrowsWithWordAndCapacity)
{
    sram::SramEnergyModel model;
    EXPECT_GT(model.accessPj(256 * 1024, 16),
              model.accessPj(256 * 1024, 4));
    EXPECT_GT(model.accessPj(1024 * 1024, 8),
              model.accessPj(128 * 1024, 8));
}

TEST(SramEnergy, RejectsBadInputs)
{
    sram::SramEnergyModel model;
    EXPECT_THROW(model.accessPj(0, 8), FatalError);
    EXPECT_THROW(model.accessPj(1024, 0), FatalError);
}

TEST(TpuEnergy, BreakdownSumsToTotal)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto r = sim.runConv(makeConv(8, 128, 28, 128, 3, 1, 1));
    const TpuEnergyReport e = layerEnergy(sim.config(), r);
    EXPECT_NEAR(e.totalPj, e.dramPj + e.sramPj + e.macPj, 1e-6);
    EXPECT_GT(e.macPj, 0.0);
    EXPECT_GT(e.sramPj, 0.0);
    EXPECT_GT(e.pjPerMac, sram::kMacPj); // overheads exist
}

TEST(TpuEnergy, ResidentLayersSpendLessDramEnergy)
{
    TpuSim sim((TpuConfig::tpuV2()));
    // Same compute, different residency: batch 8 fits, batch 64 does
    // not (at 112x112x64).
    const auto small = sim.runConv(makeConv(8, 64, 112, 64, 3, 1, 1));
    const auto big = sim.runConv(makeConv(64, 64, 112, 64, 3, 1, 1));
    const auto e_small = layerEnergy(sim.config(), small);
    const auto e_big = layerEnergy(sim.config(), big);
    // Per MAC, the streamed layer pays far more DRAM energy.
    const double macs_small = small.tflops * 1e12 * small.seconds / 2.0;
    const double macs_big = big.tflops * 1e12 * big.seconds / 2.0;
    EXPECT_GT(e_big.dramPj / macs_big,
              5.0 * e_small.dramPj / macs_small);
}

TEST(MultiCore, SplitsBatchAndScalesThroughput)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto model = models::resnet50(8);
    const auto one = sim.runModel(model);
    const auto eight = sim.runModelMultiCore(model, 8);
    // 8 cores on batch 8 -> batch 1 per core: faster wall clock.
    EXPECT_LT(eight.seconds, one.seconds);
    // Throughput accounting covers the full batch, so effective TFLOPS
    // exceeds the single-core figure.
    EXPECT_GT(eight.tflops, one.tflops);
    // But splitting is sub-linear (per-pass overheads amortize worse
    // at batch 1).
    EXPECT_GT(eight.seconds * 8.0, one.seconds);
}

TEST(MultiCore, SingleCoreDegeneratesToRunModel)
{
    TpuSim sim((TpuConfig::tpuV2()));
    const auto model = models::alexnet(8);
    EXPECT_DOUBLE_EQ(sim.runModelMultiCore(model, 1).seconds,
                     sim.runModel(model).seconds);
}

TEST(MultiCore, RejectsZeroCores)
{
    TpuSim sim((TpuConfig::tpuV2()));
    EXPECT_THROW(sim.runModelMultiCore(models::alexnet(8), 0),
                 FatalError);
}

} // namespace
} // namespace cfconv::tpusim
