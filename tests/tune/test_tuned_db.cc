/** @file Tests for the persistent tuned-config database
 *  (tune/tuned_db): deterministic persistence, round-trips, and the
 *  loader's schema and staleness validation against the live
 *  variant registry. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/atomic_file.h"
#include "tune/tuned_db.h"
#include "tune/variant_registry.h"

namespace cfconv::tune {
namespace {

/** A temp-file path unique to this test binary run. */
std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + "cfconv_tuned_db_" + stem + ".json";
}

TunedEntry
sampleEntry(const std::string &geometry = "n8_ci64_hw56_co64_k3_s1_p1",
            Index groups = 1)
{
    TunedEntry entry;
    entry.family = "tpu";
    entry.algorithm = "channel-first";
    entry.geometry = geometry;
    entry.groups = groups;
    entry.variant = "tpu-v2-a256-w4";
    entry.baseline = "tpu-v2";
    entry.tunedSeconds = 1.25e-4;
    entry.baselineSeconds = 2.5e-4;
    entry.evaluations = 9;
    entry.mode = "exhaustive";
    return entry;
}

TEST(TunedConfigDb, UpsertFindAndReplace)
{
    TunedConfigDb db;
    EXPECT_EQ(db.find("tpu", "channel-first", "g", 1), nullptr);

    db.upsert(sampleEntry("g"));
    ASSERT_EQ(db.size(), 1u);
    const TunedEntry *hit = db.find("tpu", "channel-first", "g", 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->variant, "tpu-v2-a256-w4");

    // Same key replaces; different groups or family is a new entry.
    TunedEntry replacement = sampleEntry("g");
    replacement.variant = "tpu-v2-256x256";
    db.upsert(replacement);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_EQ(db.find("tpu", "channel-first", "g", 1)->variant, "tpu-v2-256x256");

    db.upsert(sampleEntry("g", 2));
    TunedEntry gpu = sampleEntry("g");
    gpu.family = "gpu";
    gpu.variant = "gpu-v100-tuned";
    gpu.baseline = "gpu-v100";
    db.upsert(gpu);
    EXPECT_EQ(db.size(), 3u);
    EXPECT_EQ(db.find("tpu", "channel-first", "g", 2)->groups, 2);
    EXPECT_EQ(db.find("gpu", "channel-first", "g", 1)->variant, "gpu-v100-tuned");
}

TEST(TunedConfigDb, ToJsonIsDeterministicAndInsertionOrderFree)
{
    TunedConfigDb forward, backward;
    const auto a = sampleEntry("aaa");
    const auto b = sampleEntry("bbb");
    const auto c = sampleEntry("ccc");
    forward.upsert(a);
    forward.upsert(b);
    forward.upsert(c);
    backward.upsert(c);
    backward.upsert(a);
    backward.upsert(b);
    EXPECT_EQ(forward.toJson(), backward.toJson());
    EXPECT_EQ(forward.toJson(), forward.toJson());
}

TEST(TunedConfigDb, SaveAndLoadRoundTrips)
{
    const std::string path = tempPath("roundtrip");
    TunedConfigDb db;
    db.upsert(sampleEntry("layer1"));
    db.upsert(sampleEntry("layer2", 4));
    TunedEntry greedy = sampleEntry("layer3");
    greedy.mode = "greedy";
    greedy.evaluations = 5;
    db.upsert(greedy);
    ASSERT_TRUE(db.saveFile(path));

    TunedConfigDb loaded;
    const auto stats =
        loaded.loadFile(path, VariantRegistry::instance());
    ASSERT_TRUE(stats.ok()) << stats.status().toString();
    EXPECT_EQ(stats.value().loaded, 3);
    EXPECT_EQ(stats.value().rejected, 0);
    ASSERT_EQ(loaded.size(), db.size());

    for (const TunedEntry &want : db.entries()) {
        const TunedEntry *got =
            loaded.find(want.family, want.algorithm, want.geometry,
                        want.groups);
        ASSERT_NE(got, nullptr) << want.geometry;
        EXPECT_EQ(got->algorithm, want.algorithm);
        EXPECT_EQ(got->variant, want.variant);
        EXPECT_EQ(got->baseline, want.baseline);
        EXPECT_DOUBLE_EQ(got->tunedSeconds, want.tunedSeconds);
        EXPECT_DOUBLE_EQ(got->baselineSeconds, want.baselineSeconds);
        EXPECT_EQ(got->evaluations, want.evaluations);
        EXPECT_EQ(got->mode, want.mode);
    }
    // A loaded database persists byte-identically.
    EXPECT_EQ(loaded.toJson(), db.toJson());
    std::remove(path.c_str());
}

TEST(TunedConfigDb, LoaderRejectsStaleEntriesIndividually)
{
    const std::string path = tempPath("stale");
    TunedConfigDb db;
    db.upsert(sampleEntry("good"));
    TunedEntry unknownVariant = sampleEntry("stale_variant");
    unknownVariant.variant = "tpu-v9-retired";
    db.upsert(unknownVariant);
    TunedEntry unknownBaseline = sampleEntry("stale_baseline");
    unknownBaseline.baseline = "tpu-v9-retired";
    db.upsert(unknownBaseline);
    TunedEntry badSeconds = sampleEntry("bad_seconds");
    badSeconds.tunedSeconds = 0.0;
    db.upsert(badSeconds);
    TunedEntry badGroups = sampleEntry("bad_groups");
    badGroups.groups = 0;
    db.upsert(badGroups);
    TunedEntry unknownAlgorithm = sampleEntry("stale_algorithm");
    unknownAlgorithm.algorithm = "winograd";
    db.upsert(unknownAlgorithm);
    ASSERT_TRUE(db.saveFile(path));

    TunedConfigDb loaded;
    const auto stats =
        loaded.loadFile(path, VariantRegistry::instance());
    ASSERT_TRUE(stats.ok()) << stats.status().toString();
    EXPECT_EQ(stats.value().loaded, 1);
    EXPECT_EQ(stats.value().rejected, 5);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_NE(loaded.find("tpu", "channel-first", "good", 1), nullptr);
    EXPECT_EQ(loaded.find("tpu", "channel-first", "stale_variant", 1), nullptr);
    std::remove(path.c_str());
}

TEST(TunedConfigDb, LoaderRefusesForeignSchemas)
{
    const std::string path = tempPath("schema");
    const auto writeDoc = [&](const std::string &doc) {
        std::ofstream out(path);
        out << doc;
    };
    TunedConfigDb db;

    writeDoc(R"({"schema": "other.format", "version": 1,)"
             R"( "entries": []})");
    EXPECT_FALSE(db.loadFile(path, VariantRegistry::instance()).ok());

    writeDoc(R"({"schema": "cfconv.tuned_db", "version": 999,)"
             R"( "entries": []})");
    EXPECT_FALSE(db.loadFile(path, VariantRegistry::instance()).ok());

    // The pre-algorithm v1 layout is refused outright, not guessed at.
    writeDoc(R"({"schema": "cfconv.tuned_db", "version": 1,)"
             R"( "entries": []})");
    EXPECT_FALSE(db.loadFile(path, VariantRegistry::instance()).ok());

    writeDoc(R"({"schema": "cfconv.tuned_db", "version": 2})");
    EXPECT_FALSE(db.loadFile(path, VariantRegistry::instance()).ok());

    writeDoc("{not json");
    EXPECT_FALSE(db.loadFile(path, VariantRegistry::instance()).ok());

    // A structurally failed load leaves the database untouched.
    EXPECT_EQ(db.size(), 0u);
    std::remove(path.c_str());
}

TEST(TunedConfigDb, MissingFileIsNotFound)
{
    TunedConfigDb db;
    const auto stats = db.loadFile("/nonexistent/tuned.json",
                                   VariantRegistry::instance());
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST(TunedConfigDb, LoadMergesIntoExistingEntries)
{
    const std::string path = tempPath("merge");
    TunedConfigDb onDisk;
    TunedEntry newer = sampleEntry("shared");
    newer.variant = "tpu-v2-256x256";
    onDisk.upsert(newer);
    onDisk.upsert(sampleEntry("disk_only"));
    ASSERT_TRUE(onDisk.saveFile(path));

    TunedConfigDb db;
    db.upsert(sampleEntry("shared")); // to be overwritten by the file
    db.upsert(sampleEntry("memory_only"));
    const auto stats = db.loadFile(path, VariantRegistry::instance());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(db.size(), 3u);
    EXPECT_EQ(db.find("tpu", "channel-first", "shared", 1)->variant, "tpu-v2-256x256");
    EXPECT_NE(db.find("tpu", "channel-first", "memory_only", 1), nullptr);
    EXPECT_NE(db.find("tpu", "channel-first", "disk_only", 1), nullptr);
    std::remove(path.c_str());
}

TEST(TunedConfigDb, SaveWritesAChecksumTrailer)
{
    const std::string path = tempPath("trailer");
    TunedConfigDb db;
    db.upsert(sampleEntry());
    ASSERT_TRUE(db.saveFile(path));

    std::ifstream in(path, std::ios::binary);
    std::string raw;
    raw.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    EXPECT_NE(raw.find(kChecksumTrailerPrefix), std::string::npos);

    // The verified loader strips the trailer transparently.
    TunedConfigDb loaded;
    ASSERT_TRUE(
        loaded.loadFile(path, VariantRegistry::instance()).ok());
    EXPECT_EQ(loaded.size(), 1u);
    std::remove(path.c_str());
}

TEST(TunedConfigDb, LoadOrRecoverStartsFreshWhenMissing)
{
    TunedConfigDb db;
    const DbLoadStats stats = db.loadOrRecover(
        tempPath("never_written"), VariantRegistry::instance());
    EXPECT_TRUE(stats.fresh);
    EXPECT_FALSE(stats.recovered);
    EXPECT_EQ(db.size(), 0u);
}

TEST(TunedConfigDb, LoadOrRecoverQuarantinesATornFile)
{
    const std::string path = tempPath("torn");
    TunedConfigDb onDisk;
    onDisk.upsert(sampleEntry());
    ASSERT_TRUE(onDisk.saveFile(path));

    // Tear the file the way an interrupted write would: keep a prefix
    // of the content plus the now-stale checksum trailer.
    std::string raw;
    {
        std::ifstream in(path, std::ios::binary);
        raw.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    const size_t trailer = raw.rfind(kChecksumTrailerPrefix);
    ASSERT_NE(trailer, std::string::npos);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << raw.substr(0, raw.size() / 2) << raw.substr(trailer);
    }

    // The strict loader refuses the torn file...
    TunedConfigDb strict;
    EXPECT_FALSE(
        strict.loadFile(path, VariantRegistry::instance()).ok());

    // ...while loadOrRecover() deletes it and reports the recovery,
    // leaving the db empty but usable for a clean re-save.
    TunedConfigDb db;
    const DbLoadStats stats =
        db.loadOrRecover(path, VariantRegistry::instance());
    EXPECT_TRUE(stats.recovered);
    EXPECT_FALSE(stats.fresh);
    EXPECT_EQ(db.size(), 0u);
    EXPECT_FALSE(std::ifstream(path).good()); // quarantined

    db.upsert(sampleEntry());
    ASSERT_TRUE(db.saveFile(path));
    TunedConfigDb reread;
    const DbLoadStats again =
        reread.loadOrRecover(path, VariantRegistry::instance());
    EXPECT_FALSE(again.recovered);
    EXPECT_EQ(reread.size(), 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace cfconv::tune
