/** @file Tests for the design-space autotuner (tune/autotuner):
 *  knob-space indexing, exhaustive/greedy agreement, thread-count
 *  determinism, database fast-path, and model aggregation. */

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "models/model_zoo.h"
#include "tune/autotuner.h"
#include "tune/tuned_db.h"

namespace cfconv::tune {
namespace {

using tensor::makeConv;

models::ConvLayerSpec
layerOf(const char *name, tensor::ConvParams params, Index count = 1,
        Index groups = 1)
{
    models::ConvLayerSpec layer;
    layer.name = name;
    layer.params = params;
    layer.count = count;
    layer.groups = groups;
    return layer;
}

TEST(KnobSpace, FlatIndexAndPointRoundTrip)
{
    const KnobSpace space = tpuKnobSpace();
    ASSERT_EQ(space.axes.size(), 3u);
    size_t expected = 1;
    for (const auto &axis : space.axes)
        expected *= axis.levels.size();
    ASSERT_EQ(space.points(), expected);
    for (size_t flat = 0; flat < space.points(); ++flat) {
        const auto point = space.pointOf(flat);
        EXPECT_EQ(space.flatIndex(point), flat);
        EXPECT_EQ(space.variantAt(point), space.variants[flat]);
    }
    // The canonical anchor points sit where the doc comment says.
    const auto v2 = space.pointOfVariant("tpu-v2");
    ASSERT_TRUE(v2.ok());
    EXPECT_EQ(space.variantAt(v2.value()), "tpu-v2");
    EXPECT_FALSE(space.pointOfVariant("gpu-v100").ok());
    EXPECT_EQ(space.pointOfVariant("no-such-variant").status().code(),
              StatusCode::kNotFound);
}

TEST(KnobSpace, BuiltinGridsNameOnlyRegisteredVariants)
{
    const auto &registry = VariantRegistry::instance();
    for (const KnobSpace &space : {tpuKnobSpace(), gpuKnobSpace()})
        for (const auto &name : space.variants) {
            const VariantSpec *spec = registry.find(name);
            ASSERT_NE(spec, nullptr) << name;
            EXPECT_EQ(spec->backend, space.family) << name;
        }
}

TEST(SearchMode, NamesParseAndRoundTrip)
{
    EXPECT_STREQ(searchModeName(SearchMode::Exhaustive), "exhaustive");
    EXPECT_STREQ(searchModeName(SearchMode::Greedy), "greedy");
    EXPECT_EQ(parseSearchMode("exhaustive").value(),
              SearchMode::Exhaustive);
    EXPECT_EQ(parseSearchMode("greedy").value(), SearchMode::Greedy);
    EXPECT_EQ(parseSearchMode("fancy").status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Autotuner, CreateRejectsUnregisteredGridPoints)
{
    KnobSpace space = tpuKnobSpace();
    space.variants[0] = "tpu-v9-imaginary";
    EXPECT_FALSE(Autotuner::create(space).ok());
}

TEST(Autotuner, ExhaustiveFindsTheGridMinimum)
{
    auto tuner = Autotuner::create(tpuKnobSpace()).value();
    TuneOptions options;
    options.baseline = "tpu-v2";

    const auto layer = layerOf("conv3", makeConv(8, 128, 28, 128, 3, 1, 1));
    const auto choice = tuner->tuneLayer(layer, options);
    ASSERT_TRUE(choice.ok()) << choice.status().toString();

    // The reported winner must actually be the minimum over every
    // candidate, measured independently.
    double best = 0.0;
    std::string bestName;
    for (const auto &name : tuner->space().variants) {
        const auto accel = sim::makeAccelerator(name);
        const double seconds = accel->runLayer(layer.params).seconds;
        if (bestName.empty() || seconds < best) {
            best = seconds;
            bestName = name;
        }
    }
    EXPECT_EQ(choice.value().variant, bestName);
    EXPECT_DOUBLE_EQ(choice.value().tunedSeconds, best);
    EXPECT_LE(choice.value().tunedSeconds,
              choice.value().baselineSeconds);
    EXPECT_GE(choice.value().speedup(), 1.0);
}

TEST(Autotuner, ChoiceIsIndependentOfThreadCount)
{
    auto tuner = Autotuner::create(tpuKnobSpace()).value();
    TuneOptions options;
    options.baseline = "tpu-v2";
    const auto layer =
        layerOf("conv4", makeConv(4, 256, 14, 256, 3, 2, 1));

    parallel::setThreads(1);
    const auto serial = tuner->tuneLayer(layer, options).value();
    parallel::setThreads(4);
    const auto threaded = tuner->tuneLayer(layer, options).value();
    parallel::setThreads(1);

    EXPECT_EQ(serial.variant, threaded.variant);
    EXPECT_DOUBLE_EQ(serial.tunedSeconds, threaded.tunedSeconds);
    EXPECT_DOUBLE_EQ(serial.baselineSeconds, threaded.baselineSeconds);
}

TEST(Autotuner, GreedyAgreesWithExhaustiveOnBuiltinGrids)
{
    // The built-in grids are small and well-behaved; greedy must land
    // on the same winner exhaustive does for representative shapes.
    const std::vector<models::ConvLayerSpec> layers = {
        layerOf("stem", makeConv(8, 3, 224, 64, 7, 2, 3)),
        layerOf("mid", makeConv(8, 128, 28, 128, 3, 1, 1)),
        layerOf("late1x1", makeConv(8, 512, 7, 2048, 1, 1, 0)),
    };
    const std::vector<std::pair<KnobSpace, std::string>> setups = {
        {tpuKnobSpace(), "tpu-v2"},
        {gpuKnobSpace(), "gpu-v100"},
    };
    for (const auto &[space, baseline] : setups) {
        auto tuner = Autotuner::create(space).value();
        for (const auto &layer : layers) {
            TuneOptions exhaustive;
            exhaustive.baseline = baseline;
            TuneOptions greedy = exhaustive;
            greedy.mode = SearchMode::Greedy;
            const auto a = tuner->tuneLayer(layer, exhaustive).value();
            const auto b = tuner->tuneLayer(layer, greedy).value();
            EXPECT_EQ(a.variant, b.variant)
                << baseline << " " << layer.name;
            EXPECT_DOUBLE_EQ(a.tunedSeconds, b.tunedSeconds)
                << baseline << " " << layer.name;
        }
    }
}

TEST(Autotuner, DatabaseHitSkipsTheSearch)
{
    auto tuner = Autotuner::create(tpuKnobSpace()).value();
    TunedConfigDb db;
    TuneOptions options;
    options.baseline = "tpu-v2";
    options.db = &db;
    const auto layer =
        layerOf("conv2", makeConv(8, 64, 56, 64, 3, 1, 1), 3);

    const auto fresh = tuner->tuneLayer(layer, options).value();
    EXPECT_FALSE(fresh.fromDb);
    EXPECT_EQ(db.size(), 1u);

    const auto hit = tuner->tuneLayer(layer, options).value();
    EXPECT_TRUE(hit.fromDb);
    EXPECT_EQ(hit.evaluations, 0);
    EXPECT_EQ(hit.variant, fresh.variant);
    EXPECT_DOUBLE_EQ(hit.tunedSeconds, fresh.tunedSeconds);
    EXPECT_DOUBLE_EQ(hit.baselineSeconds, fresh.baselineSeconds);
    EXPECT_EQ(hit.count, layer.count);
}

TEST(Autotuner, DatabaseHitRequiresTheSameBaseline)
{
    auto tuner = Autotuner::create(gpuKnobSpace()).value();
    TunedConfigDb db;
    TuneOptions options;
    options.baseline = "gpu-v100";
    options.db = &db;
    const auto layer =
        layerOf("conv5", makeConv(8, 512, 7, 512, 3, 1, 1));

    ASSERT_TRUE(tuner->tuneLayer(layer, options).ok());
    // A different baseline means the stored entry's relative numbers
    // do not answer the question; the tuner must re-search.
    options.baseline = "gpu-v100-cudnn";
    const auto other = tuner->tuneLayer(layer, options).value();
    EXPECT_FALSE(other.fromDb);
}

TEST(Autotuner, UnsupportedAlgorithmsNeverWin)
{
    // SMM-Conv rejects strided layers; on a stride-2 shape the
    // exhaustive search must skip every smm grid point (scored
    // +infinity, never simulated) and still land on a finite winner.
    auto tuner = Autotuner::create(tpuKnobSpace()).value();
    TuneOptions options;
    options.baseline = "tpu-v2";
    const auto layer =
        layerOf("strided", makeConv(4, 64, 28, 64, 3, 2, 1));
    const auto choice = tuner->tuneLayer(layer, options).value();
    EXPECT_EQ(choice.variant.find("-smm"), std::string::npos)
        << choice.variant;
    EXPECT_GT(choice.tunedSeconds, 0.0);
}

TEST(Autotuner, DatabaseKeysSearchesByBaselineAlgorithm)
{
    // The same geometry tuned from baselines with different lowerings
    // lands in distinct DB entries (family|algorithm|geometry keys).
    auto tuner = Autotuner::create(tpuKnobSpace()).value();
    TunedConfigDb db;
    TuneOptions options;
    options.baseline = "tpu-v2";
    options.db = &db;
    const auto layer =
        layerOf("conv3", makeConv(8, 128, 28, 128, 3, 1, 1));
    ASSERT_TRUE(tuner->tuneLayer(layer, options).ok());
    options.baseline = "tpu-v2-indirect";
    ASSERT_TRUE(tuner->tuneLayer(layer, options).ok());
    EXPECT_EQ(db.size(), 2u);
    const std::string geometry = layer.params.toString();
    EXPECT_NE(db.find("tpu", "channel-first", geometry, 1), nullptr);
    EXPECT_NE(db.find("tpu", "indirect", geometry, 1), nullptr);
    EXPECT_EQ(db.find("tpu", "smm", geometry, 1), nullptr);
}

TEST(Autotuner, RejectsBaselinesOutsideTheSpace)
{
    auto tuner = Autotuner::create(tpuKnobSpace()).value();
    TuneOptions options;
    options.baseline = "gpu-v100"; // registered, but not a grid point
    const auto layer = layerOf("x", makeConv(1, 8, 8, 8, 3, 1, 1));
    EXPECT_FALSE(tuner->tuneLayer(layer, options).ok());
}

TEST(Autotuner, TuneModelAggregatesLayers)
{
    auto tuner = Autotuner::create(tpuKnobSpace()).value();
    TunedConfigDb db;
    TuneOptions options;
    options.baseline = "tpu-v2";
    options.db = &db;

    const auto model = models::resnet50(8);
    const auto result = tuner->tuneModel(model, options);
    ASSERT_TRUE(result.ok()) << result.status().toString();
    const ModelTuneResult &r = result.value();
    EXPECT_EQ(r.model, model.name);
    EXPECT_EQ(r.baseline, "tpu-v2");
    EXPECT_EQ(r.layers.size(), model.layers.size());

    double baselineSum = 0.0, tunedSum = 0.0;
    for (size_t i = 0; i < r.layers.size(); ++i) {
        const LayerTuneChoice &choice = r.layers[i];
        EXPECT_EQ(choice.layerName, model.layers[i].name);
        EXPECT_LE(choice.tunedSeconds, choice.baselineSeconds);
        const double n = static_cast<double>(choice.count);
        baselineSum += choice.baselineSeconds * n;
        tunedSum += choice.tunedSeconds * n;
    }
    EXPECT_DOUBLE_EQ(r.baselineSeconds, baselineSum);
    EXPECT_DOUBLE_EQ(r.tunedSeconds, tunedSum);
    EXPECT_GE(r.speedup(), 1.0);

    // A second pass over the same model is answered entirely from the
    // database: zero fresh evaluations, identical choices.
    const auto again = tuner->tuneModel(model, options).value();
    EXPECT_EQ(again.evaluations, 0);
    EXPECT_EQ(again.dbHits,
              static_cast<Index>(model.layers.size()));
    ASSERT_EQ(again.layers.size(), r.layers.size());
    for (size_t i = 0; i < r.layers.size(); ++i) {
        EXPECT_EQ(again.layers[i].variant, r.layers[i].variant);
        EXPECT_DOUBLE_EQ(again.layers[i].tunedSeconds,
                         r.layers[i].tunedSeconds);
    }
    EXPECT_DOUBLE_EQ(again.tunedSeconds, r.tunedSeconds);
}

} // namespace
} // namespace cfconv::tune
