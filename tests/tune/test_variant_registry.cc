/** @file Tests for the named accelerator-variant zoo
 *  (tune/variant_registry): every registered variant constructs and
 *  runs a smoke layer, the factory surface derives from the registry,
 *  and the four stock configurations stay byte-identical to their
 *  pre-registry constructions. */

#include <gtest/gtest.h>

#include <set>

#include "sim/gpu_accelerator.h"
#include "sim/model_runner.h"
#include "sim/tpu_accelerator.h"
#include "tune/variant_registry.h"

namespace cfconv::tune {
namespace {

using tensor::makeConv;

TEST(VariantRegistry, EveryVariantConstructsAndRunsASmokeLayer)
{
    const auto &registry = VariantRegistry::instance();
    const auto names = registry.names();
    ASSERT_GE(names.size(), 20u);
    const auto p = makeConv(1, 64, 28, 64, 3, 1, 1);
    for (const auto &name : names) {
        const VariantSpec *spec = registry.find(name);
        ASSERT_NE(spec, nullptr) << name;
        EXPECT_EQ(spec->name, name);
        auto made = registry.make(name);
        ASSERT_TRUE(made.ok()) << name;
        const auto accelerator = std::move(made).value();
        EXPECT_EQ(accelerator->name(), name);
        EXPECT_GT(accelerator->peakTflops(), 0.0) << name;
        const sim::LayerRecord record = accelerator->runLayer(p);
        EXPECT_GT(record.seconds, 0.0) << name;
        EXPECT_GT(record.tflops, 0.0) << name;
        EXPECT_EQ(record.flops, p.flops()) << name;
    }
}

TEST(VariantRegistry, NamesAreUniqueAndFamilyFiltered)
{
    const auto &registry = VariantRegistry::instance();
    const auto names = registry.names();
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
    EXPECT_EQ(names.size(), registry.size());

    const auto tpu = registry.names(Backend::Tpu);
    const auto gpu = registry.names(Backend::Gpu);
    EXPECT_EQ(tpu.size() + gpu.size(), names.size());
    for (const auto &name : tpu)
        EXPECT_EQ(registry.find(name)->backend, Backend::Tpu) << name;
    for (const auto &name : gpu)
        EXPECT_EQ(registry.find(name)->backend, Backend::Gpu) << name;
}

TEST(VariantRegistry, FactorySurfaceDerivesFromRegistry)
{
    // knownAccelerators() is the registry's name list, stock four
    // first in the historical presentation order...
    const auto names = sim::knownAccelerators();
    ASSERT_EQ(names, VariantRegistry::instance().names());
    ASSERT_GE(names.size(), 4u);
    EXPECT_EQ(names[0], "tpu-v2");
    EXPECT_EQ(names[1], "tpu-v3ish");
    EXPECT_EQ(names[2], "gpu-v100");
    EXPECT_EQ(names[3], "gpu-v100-cudnn");

    // ...and every listed name resolves through makeAccelerator.
    for (const auto &name : names)
        EXPECT_EQ(sim::makeAccelerator(name)->name(), name);
}

TEST(VariantRegistry, UnknownNameIsNotFoundAndListsValidNames)
{
    const auto made = sim::tryMakeAccelerator("tpu-v9-imaginary");
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), StatusCode::kNotFound);
    const std::string &message = made.status().message();
    EXPECT_NE(message.find("tpu-v9-imaginary"), std::string::npos);
    // The message enumerates the valid names — all of them.
    for (const auto &name : sim::knownAccelerators())
        EXPECT_NE(message.find(name), std::string::npos) << name;
}

TEST(VariantRegistry, RejectsEmptyAndDuplicateNames)
{
    auto &registry = VariantRegistry::instance();
    VariantSpec nameless;
    EXPECT_EQ(registry.add(nameless).code(),
              StatusCode::kInvalidArgument);
    VariantSpec duplicate;
    duplicate.name = "tpu-v2";
    EXPECT_EQ(registry.add(duplicate).code(),
              StatusCode::kInvalidArgument);
    EXPECT_FALSE(registry.contains(""));
}

TEST(VariantRegistry, RuntimeAdditionsResolveThroughTheFactory)
{
    auto &registry = VariantRegistry::instance();
    const std::string name = "test-only-tpu-w64";
    if (!registry.contains(name)) {
        VariantSpec spec;
        spec.name = name;
        spec.backend = Backend::Tpu;
        spec.tpuConfig.wordElems = 64;
        ASSERT_TRUE(registry.add(spec).ok());
    }
    const auto made = sim::tryMakeAccelerator(name);
    ASSERT_TRUE(made.ok());
    EXPECT_EQ(made.value()->name(), name);
    const auto names = sim::knownAccelerators();
    EXPECT_NE(std::find(names.begin(), names.end(), name),
              names.end());
}

/** Compare two LayerRecords field by field, including extras. */
void
expectSameRecord(const sim::LayerRecord &got,
                 const sim::LayerRecord &want, const std::string &tag)
{
    EXPECT_EQ(got.geometry, want.geometry) << tag;
    EXPECT_EQ(got.seconds, want.seconds) << tag;
    EXPECT_EQ(got.tflops, want.tflops) << tag;
    EXPECT_EQ(got.utilization, want.utilization) << tag;
    EXPECT_EQ(got.dramBytes, want.dramBytes) << tag;
    EXPECT_EQ(got.flops, want.flops) << tag;
    ASSERT_EQ(got.extras.size(), want.extras.size()) << tag;
    for (const auto &[key, value] : want.extras) {
        ASSERT_TRUE(got.extras.count(key)) << tag << " " << key;
        EXPECT_EQ(got.extras.at(key), value) << tag << " " << key;
    }
}

TEST(VariantRegistry, StockVariantsMatchPreRegistryRecordsExactly)
{
    // The four stock names must produce byte-identical records through
    // the registry path vs the direct adapter constructions the
    // factory used to hard-code.
    const std::vector<tensor::ConvParams> layers = {
        makeConv(8, 3, 224, 64, 7, 2, 3),
        makeConv(8, 64, 56, 64, 1, 1, 0),
        makeConv(8, 256, 14, 256, 3, 2, 1),
    };

    std::vector<std::unique_ptr<sim::Accelerator>> direct;
    direct.push_back(std::make_unique<sim::TpuAccelerator>(
        "tpu-v2", tpusim::TpuConfig::tpuV2()));
    direct.push_back(std::make_unique<sim::TpuAccelerator>(
        "tpu-v3ish", tpusim::TpuConfig::tpuV3ish()));
    direct.push_back(std::make_unique<sim::GpuAccelerator>(
        "gpu-v100", gpusim::GpuConfig::v100()));
    gpusim::GpuRunOptions cudnn;
    cudnn.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
    cudnn.vendorTuned = true;
    direct.push_back(std::make_unique<sim::GpuAccelerator>(
        "gpu-v100-cudnn", gpusim::GpuConfig::v100(), cudnn));

    for (const auto &want : direct) {
        const auto got = sim::makeAccelerator(want->name());
        EXPECT_EQ(got->peakTflops(), want->peakTflops())
            << want->name();
        for (const auto &p : layers)
            expectSameRecord(got->runLayer(p), want->runLayer(p),
                             want->name() + " " + p.toString());
    }
}

} // namespace
} // namespace cfconv::tune
