/** @file Contract tests for the conv::Algorithm registry: identity,
 *  name parsing, applicability predicates, and the lowered-geometry /
 *  traffic models each registered scheme advertises. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "conv/algorithm.h"
#include "tensor/conv_params.h"

namespace cfconv::conv {
namespace {

using tensor::makeConv;

TEST(AlgorithmRegistry, AllAlgorithmsInIdOrder)
{
    const auto &all = allAlgorithms();
    ASSERT_EQ(all.size(), static_cast<size_t>(kAlgorithmCount));
    for (size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(static_cast<size_t>(all[i]->id()), i);
        // Both lookups agree with the registration order.
        EXPECT_EQ(findAlgorithm(all[i]->id()), all[i]);
        EXPECT_EQ(findAlgorithm(std::string(all[i]->name())), all[i]);
        EXPECT_STREQ(algorithmName(all[i]->id()), all[i]->name());
        EXPECT_STRNE(all[i]->description(), "");
    }
}

TEST(AlgorithmRegistry, CanonicalNamesAreStable)
{
    // These spellings are serialized into RunRecords and the tuned-DB:
    // changing one is a schema break, which is what this test pins.
    const std::vector<std::string> expected = {
        "channel-first", "channel-last", "explicit-im2col", "indirect",
        "smm"};
    const auto &all = allAlgorithms();
    ASSERT_EQ(all.size(), expected.size());
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->name(), expected[i]);
}

TEST(AlgorithmRegistry, ParseRoundTripsEveryName)
{
    for (const Algorithm *algo : allAlgorithms()) {
        const StatusOr<AlgorithmId> parsed =
            parseAlgorithmName(algo->name());
        ASSERT_TRUE(parsed.ok()) << algo->name();
        EXPECT_EQ(*parsed, algo->id());
    }
}

TEST(AlgorithmRegistry, ParseNamesTheOffenderAndListsKnown)
{
    for (const char *bad : {"winograd", "SMM", "Channel-First", ""}) {
        const StatusOr<AlgorithmId> parsed = parseAlgorithmName(bad);
        ASSERT_FALSE(parsed.ok()) << bad;
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
        const std::string message = parsed.status().message();
        EXPECT_NE(message.find('"' + std::string(bad) + '"'),
                  std::string::npos)
            << message;
        // The error doubles as the help text: every valid spelling.
        for (const Algorithm *algo : allAlgorithms())
            EXPECT_NE(message.find(algo->name()), std::string::npos)
                << message;
    }
}

TEST(AlgorithmRegistry, UnknownNameLookupReturnsNull)
{
    EXPECT_EQ(findAlgorithm(std::string("winograd")), nullptr);
    EXPECT_EQ(findAlgorithm(std::string("")), nullptr);
}

TEST(AlgorithmSupports, OnlySmmRestrictsStrideAndDilation)
{
    const auto strided = makeConv(1, 4, 9, 4, 3, /*stride=*/2, 1);
    const auto dilated =
        makeConv(1, 4, 9, 4, 3, /*stride=*/1, /*pad=*/2, /*dilation=*/2);
    for (const Algorithm *algo : allAlgorithms()) {
        const bool is_smm = algo->id() == AlgorithmId::Smm;
        EXPECT_EQ(algo->supports(strided, 1).ok(), !is_smm)
            << algo->name();
        EXPECT_EQ(algo->supports(dilated, 1).ok(), !is_smm)
            << algo->name();
    }
    const Algorithm *smm = findAlgorithm(AlgorithmId::Smm);
    EXPECT_NE(smm->supports(strided, 1).message().find("unit stride"),
              std::string::npos);
    EXPECT_NE(smm->supports(dilated, 1).message().find("unit dilation"),
              std::string::npos);
    // On a unit-stride/unit-dilation layer SMM-Conv is applicable.
    EXPECT_TRUE(smm->supports(makeConv(1, 4, 9, 4, 3, 1, 1), 1).ok());
}

TEST(AlgorithmSupports, EveryAlgorithmRejectsNonPositiveGroups)
{
    const auto p = makeConv(1, 8, 9, 8, 3, 1, 1);
    for (const Algorithm *algo : allAlgorithms()) {
        const Status bad = algo->supports(p, 0);
        ASSERT_FALSE(bad.ok()) << algo->name();
        EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
        EXPECT_NE(bad.message().find("groups must be >= 1"),
                  std::string::npos)
            << bad.message();
        EXPECT_NE(bad.message().find(algo->name()), std::string::npos)
            << bad.message();
        EXPECT_TRUE(algo->supports(p, 2).ok()) << algo->name();
    }
}

TEST(AlgorithmGeometry, EveryAlgorithmAdvertisesTheLogicalGemm)
{
    const auto p = makeConv(2, 8, 14, 16, 3, 1, 1);
    for (const Algorithm *algo : allAlgorithms()) {
        const LoweredGeometry g = algo->geometry(p);
        EXPECT_EQ(g.m, p.gemmM()) << algo->name();
        EXPECT_EQ(g.k, p.gemmK()) << algo->name();
        EXPECT_EQ(g.n, p.gemmN()) << algo->name();
    }
}

TEST(AlgorithmGeometry, ImplicitSchemesMaterializeNothing)
{
    const auto p = makeConv(2, 8, 14, 16, 3, 1, 1);
    for (const AlgorithmId id :
         {AlgorithmId::ChannelFirst, AlgorithmId::ChannelLast,
          AlgorithmId::Smm}) {
        const LoweredGeometry g = findAlgorithm(id)->geometry(p);
        EXPECT_EQ(g.workspaceBytes, 0) << algorithmName(id);
        EXPECT_EQ(g.metadataBytes, 0) << algorithmName(id);
        EXPECT_DOUBLE_EQ(g.duplication, 1.0) << algorithmName(id);
    }
}

TEST(AlgorithmGeometry, ExplicitIm2colPaysTheDuplication)
{
    const auto p = makeConv(2, 8, 14, 16, 3, 1, 1);
    const LoweredGeometry g =
        findAlgorithm(AlgorithmId::ExplicitIm2col)->geometry(p);
    EXPECT_EQ(g.workspaceBytes, p.loweredBytes());
    EXPECT_EQ(g.metadataBytes, 0);
    // A 3x3 lowered matrix duplicates the IFMap roughly 9x (Table 1).
    EXPECT_GT(g.duplication, 1.0);
    EXPECT_DOUBLE_EQ(g.duplication,
                     static_cast<double>(p.loweredElems()) /
                         static_cast<double>(p.inputElems()));
}

TEST(AlgorithmGeometry, IndirectPaysOnlyThePointerTable)
{
    const auto p = makeConv(2, 8, 14, 16, 3, 1, 1);
    const LoweredGeometry g =
        findAlgorithm(AlgorithmId::Indirect)->geometry(p);
    EXPECT_EQ(g.workspaceBytes, 0);
    EXPECT_DOUBLE_EQ(g.duplication, 1.0);
    // One 8-byte pointer per (output position, filter tap).
    EXPECT_EQ(g.metadataBytes,
              static_cast<Bytes>(p.gemmM()) * p.kernelH * p.kernelW * 8);
}

TEST(AlgorithmTraffic, TotalIsTheSumOfTheOperandClasses)
{
    const auto p = makeConv(2, 8, 14, 16, 3, 2, 1);
    for (const Algorithm *algo : allAlgorithms()) {
        const Traffic t = algo->traffic(p);
        EXPECT_EQ(t.totalBytes(), t.inputBytes + t.filterBytes +
                                      t.outputBytes + t.workspaceBytes +
                                      t.metadataBytes)
            << algo->name();
        EXPECT_GT(t.inputBytes, 0) << algo->name();
        EXPECT_EQ(t.filterBytes, p.filterBytes()) << algo->name();
        EXPECT_EQ(t.outputBytes, p.outputBytes()) << algo->name();
    }
}

TEST(AlgorithmTraffic, SchemesDifferOnlyWhereTheyShould)
{
    const auto p = makeConv(2, 8, 14, 16, 3, 1, 1);
    const Traffic cf =
        findAlgorithm(AlgorithmId::ChannelFirst)->traffic(p);
    const Traffic cl =
        findAlgorithm(AlgorithmId::ChannelLast)->traffic(p);
    const Traffic smm = findAlgorithm(AlgorithmId::Smm)->traffic(p);
    // The three no-materialization schemes move identical unique bytes.
    for (const Traffic &t : {cl, smm}) {
        EXPECT_EQ(t.inputBytes, cf.inputBytes);
        EXPECT_EQ(t.workspaceBytes, 0);
        EXPECT_EQ(t.metadataBytes, 0);
    }
    EXPECT_EQ(cf.workspaceBytes, 0);
    EXPECT_EQ(cf.metadataBytes, 0);

    // Explicit writes the lowered matrix once and reads it back.
    const Traffic ex =
        findAlgorithm(AlgorithmId::ExplicitIm2col)->traffic(p);
    EXPECT_EQ(ex.workspaceBytes, 2 * p.loweredBytes());
    EXPECT_GT(ex.totalBytes(), cf.totalBytes());

    // Indirect adds exactly the pointer table on top of implicit.
    const Traffic in =
        findAlgorithm(AlgorithmId::Indirect)->traffic(p);
    EXPECT_EQ(in.inputBytes, cf.inputBytes);
    EXPECT_EQ(in.workspaceBytes, 0);
    EXPECT_EQ(in.metadataBytes,
              findAlgorithm(AlgorithmId::Indirect)
                  ->geometry(p)
                  .metadataBytes);
    EXPECT_GT(in.totalBytes(), cf.totalBytes());
    EXPECT_LT(in.totalBytes(), ex.totalBytes());
}

} // namespace
} // namespace cfconv::conv
