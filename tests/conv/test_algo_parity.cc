/** @file Golden-parity suite for the algorithm zoo: every registered
 *  conv::Algorithm against the tensor::conv_ref direct reference over
 *  awkward shapes (stride 2/3, dilation 2, asymmetric padding,
 *  rectangular kernels, 1x1 and 7x7 filters), bit-identical at any
 *  thread count, and the same zoo surfaced through both simulator
 *  backends with thread-count-invariant LayerRecords. */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "conv/algorithm.h"
#include "sim/accelerator.h"
#include "tensor/conv_ref.h"
#include "tensor/tensor.h"

namespace cfconv::conv {
namespace {

using tensor::ConvParams;
using tensor::makeConv;
using tensor::makeConvRect;
using tensor::Tensor;

/** The awkward-shape zoo: every way a lowering scheme tends to get the
 *  address arithmetic wrong. Sizes are small so the full matrix (shapes
 *  x algorithms x thread counts) stays fast. */
std::vector<ConvParams>
awkwardShapes()
{
    return {
        makeConv(2, 6, 8, 6, 3, 1, 1),  // unit-stride 3x3 (all algos)
        makeConv(2, 5, 9, 4, 3, 2, 1),  // stride 2
        makeConv(1, 3, 11, 2, 3, 3, 1), // stride 3
        makeConv(1, 4, 9, 3, 3, 1, 2, 2), // dilation 2
        // Rectangular 3x5 kernel, stride 1x2, asymmetric pad 2x1.
        makeConvRect(1, 3, 8, 10, 4, 3, 5, 1, 2, 2, 1),
        makeConv(2, 8, 7, 6, 1),        // pointwise 1x1
        makeConv(1, 3, 15, 4, 7, 2, 3), // 7x7, stride 2
    };
}

/** Scoped thread-count override that restores the pool on exit, so a
 *  failing assertion cannot leak a 1-thread pool into later tests. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(Index n) : saved_(parallel::threads())
    {
        parallel::setThreads(n);
    }
    ~ScopedThreads() { parallel::setThreads(saved_); }

  private:
    Index saved_;
};

TEST(AlgoParity, EveryAlgorithmMatchesConvDirect)
{
    for (const ConvParams &p : awkwardShapes()) {
        Tensor input = tensor::makeInput(p);
        Tensor filter = tensor::makeFilter(p);
        input.fillRandom(101);
        filter.fillRandom(103);
        const Tensor ref = tensor::convDirect(p, input, filter);
        for (const Algorithm *algo : allAlgorithms()) {
            if (!algo->supports(p, 1).ok()) {
                // Only SMM-Conv declines shapes in this zoo (non-unit
                // stride/dilation); anything else refusing is a bug.
                EXPECT_EQ(algo->id(), AlgorithmId::Smm)
                    << algo->name() << " refused " << p.toString();
                continue;
            }
            const Tensor out = algo->execute(p, input, filter);
            EXPECT_LT(out.maxAbsDiff(ref), 1e-3f)
                << algo->name() << " on " << p.toString();
        }
    }
}

TEST(AlgoParity, ExecuteIsBitIdenticalAcrossThreadCounts)
{
    for (const ConvParams &p : awkwardShapes()) {
        Tensor input = tensor::makeInput(p);
        Tensor filter = tensor::makeFilter(p);
        input.fillRandom(101);
        filter.fillRandom(103);
        for (const Algorithm *algo : allAlgorithms()) {
            if (!algo->supports(p, 1).ok())
                continue;
            const auto runWith = [&](Index n) {
                ScopedThreads st(n);
                return algo->execute(p, input, filter);
            };
            const Tensor one = runWith(1);
            const Tensor four = runWith(4);
            // Not "close": identical. The accumulation order must not
            // depend on how parallelFor chunked the rows.
            EXPECT_EQ(one.maxAbsDiff(four), 0.0f)
                << algo->name() << " on " << p.toString();
        }
    }
}

/** One accelerator variant per (backend, algorithm) cell, stock cores. */
std::vector<std::string>
matrixVariants()
{
    return {
        "tpu-v2",          "tpu-v2-chlast",     "tpu-v2-explicit",
        "tpu-v2-indirect", "tpu-v2-smm",        "gpu-v100",
        "gpu-v100-chlast", "gpu-v100-explicit", "gpu-v100-indirect",
        "gpu-v100-smm",
    };
}

TEST(AlgoParity, BothBackendsExposeTheRegisteredAlgorithm)
{
    for (const std::string &name : matrixVariants()) {
        const auto accel = sim::makeAccelerator(name);
        const Algorithm *algo = accel->algorithm();
        ASSERT_NE(algo, nullptr) << name;
        // The adapter's algorithm() must point back into the registry,
        // not at a private copy.
        EXPECT_EQ(findAlgorithm(algo->id()), algo) << name;
    }
}

TEST(AlgoParity, LayerRecordsAreThreadCountInvariant)
{
    const auto p = makeConv(4, 64, 28, 64, 3, 1, 1);
    sim::RunOptions grouped;
    grouped.groups = 2;
    for (const std::string &name : matrixVariants()) {
        // Fresh accelerator per thread count so the comparison is
        // between two real simulations, not a memo-cache hit.
        sim::LayerRecord one, four, gone, gfour;
        {
            ScopedThreads st(1);
            const auto accel = sim::makeAccelerator(name);
            one = accel->runLayer(p);
            gone = accel->runLayer(p, grouped);
        }
        {
            ScopedThreads st(4);
            const auto accel = sim::makeAccelerator(name);
            four = accel->runLayer(p);
            gfour = accel->runLayer(p, grouped);
        }
        for (const auto &[a, b] : {std::pair(one, four),
                                   std::pair(gone, gfour)}) {
            EXPECT_EQ(a.geometry, b.geometry) << name;
            EXPECT_EQ(a.groups, b.groups) << name;
            EXPECT_EQ(a.seconds, b.seconds) << name;
            EXPECT_EQ(a.tflops, b.tflops) << name;
            EXPECT_EQ(a.utilization, b.utilization) << name;
            EXPECT_EQ(a.dramBytes, b.dramBytes) << name;
            EXPECT_EQ(a.flops, b.flops) << name;
            EXPECT_EQ(a.algorithm, b.algorithm) << name;
            EXPECT_EQ(a.extras, b.extras) << name;
        }
    }
}

TEST(AlgoParity, RecordsStampOnlyTheZooAdditions)
{
    // The pre-zoo lowering paths keep their empty algorithm field so
    // existing reports stay byte-identical; the additions are stamped.
    const auto p = makeConv(4, 64, 28, 64, 3, 1, 1);
    for (const std::string &name : matrixVariants()) {
        const auto accel = sim::makeAccelerator(name);
        const sim::LayerRecord record = accel->runLayer(p);
        const AlgorithmId id = accel->algorithm()->id();
        if (id == AlgorithmId::Indirect || id == AlgorithmId::Smm)
            EXPECT_EQ(record.algorithm, accel->algorithm()->name())
                << name;
        else
            EXPECT_TRUE(record.algorithm.empty()) << name;
    }
}

TEST(AlgoParity, UnsupportedShapesAreRejectedNotSimulated)
{
    const auto strided = makeConv(4, 64, 28, 64, 3, /*stride=*/2, 1);
    for (const std::string &name : matrixVariants()) {
        const auto accel = sim::makeAccelerator(name);
        const StatusOr<sim::LayerRecord> record =
            accel->tryRunLayer(strided);
        if (accel->algorithm()->id() == AlgorithmId::Smm) {
            ASSERT_FALSE(record.ok()) << name;
            EXPECT_EQ(record.status().code(),
                      StatusCode::kInvalidArgument)
                << name;
            EXPECT_NE(record.status().message().find("smm"),
                      std::string::npos)
                << record.status().toString();
        } else {
            ASSERT_TRUE(record.ok())
                << name << ": " << record.status().toString();
            EXPECT_GT(record->seconds, 0.0) << name;
        }
    }
}

} // namespace
} // namespace cfconv::conv
