/** @file Tests for the analytical SRAM area model (Fig 16b anchors). */

#include <gtest/gtest.h>

#include "common/logging.h"

#include "sram/sram_area_model.h"

namespace cfconv::sram {
namespace {

constexpr Bytes kCap = 256 * 1024;

TEST(SramAreaModel, PaperAnchorWord4vs32Bytes)
{
    // "a word size of 4 bytes increases the area overhead by 3.2 times
    // compared to that when the word size is 32 bytes" (Sec. IV-C):
    // word 1 element (4 B) vs word 8 elements (32 B).
    SramAreaModel model;
    const double ratio =
        model.areaMm2(kCap, 1) / model.areaMm2(kCap, 8);
    EXPECT_NEAR(ratio, 3.2, 0.05);
}

TEST(SramAreaModel, PaperAnchorWord1LargeOverheadVsMinimum)
{
    // The paper quotes "~5x" for word size 1 vs the minimum; that is
    // not exactly consistent with its other anchor (3.2x vs word 8
    // with word 8 "close to the minimum"), so we require a large
    // overhead in the 3.4x-5.5x band while keeping the 3.2x anchor
    // exact (previous test).
    SramAreaModel model;
    EXPECT_GT(model.relativeArea(kCap, 1), 3.4);
    EXPECT_LT(model.relativeArea(kCap, 1), 5.5);
}

TEST(SramAreaModel, Word8IsCloseToMinimum)
{
    // "The word size 8 achieves the area efficiency that is close to
    // the minimum value."
    SramAreaModel model;
    EXPECT_LT(model.relativeArea(kCap, 8), 1.15);
}

TEST(SramAreaModel, AreaDecreasesThenFlattens)
{
    SramAreaModel model;
    double prev = model.areaMm2(kCap, 1);
    for (Index w : {2, 4, 8, 16}) {
        const double cur = model.areaMm2(kCap, w);
        EXPECT_LT(cur, prev) << "word " << w;
        prev = cur;
    }
    // Past the optimum the column periphery grows the area again, but
    // gently.
    EXPECT_LT(model.areaMm2(kCap, 64) / model.areaMm2(kCap, 16), 1.5);
}

TEST(SramAreaModel, AreaScalesWithCapacity)
{
    SramAreaModel model;
    EXPECT_NEAR(model.areaMm2(2 * kCap, 8) / model.areaMm2(kCap, 8),
                2.0, 1e-9);
}

TEST(SramAreaModel, BestWordInPlausibleRange)
{
    SramAreaModel model;
    const Index best = model.bestWordElems(kCap);
    EXPECT_GE(best, 8);
    EXPECT_LE(best, 64);
}

TEST(SramAreaModel, RejectsBadInputs)
{
    SramAreaModel model;
    EXPECT_THROW(model.areaMm2(kCap, 0), FatalError);
    EXPECT_THROW(model.areaMm2(0, 8), FatalError);
}

} // namespace
} // namespace cfconv::sram
