/** @file Tests for the Lym-style banked SRAM + crossbar model. */

#include <gtest/gtest.h>

#include "common/logging.h"

#include "sram/banked_sram.h"

namespace cfconv::sram {
namespace {

TEST(BankedSram, ConflictFreeColumnTakesOneCycle)
{
    BankedSram sram({8, 8});
    EXPECT_EQ(sram.serveColumn({0, 1, 2, 3, 4, 5, 6, 7}), 1u);
    EXPECT_EQ(sram.conflictCycles(), 0);
}

TEST(BankedSram, ConflictsSerialize)
{
    BankedSram sram({8, 8});
    // Four requests to bank 0: 4 cycles.
    EXPECT_EQ(sram.serveColumn({0, 0, 0, 0}), 4u);
    EXPECT_EQ(sram.conflictCycles(), 3);
}

TEST(BankedSram, WorstBankDominates)
{
    BankedSram sram({4, 8});
    EXPECT_EQ(sram.serveColumn({0, 0, 1, 2, 3, 3, 3, 2}), 3u);
}

TEST(BankedSram, EmptyColumnStillCostsACycle)
{
    BankedSram sram({4, 4});
    EXPECT_EQ(sram.serveColumn({}), 1u);
    EXPECT_EQ(sram.servedColumns(), 1);
}

TEST(BankedSram, RejectsBadRequests)
{
    BankedSram sram({4, 4});
    EXPECT_THROW(sram.serveColumn({0, 1, 2, 3, 0}), FatalError);
    EXPECT_THROW(sram.serveColumn({4}), FatalError);
    EXPECT_THROW(sram.serveColumn({-1}), FatalError);
}

TEST(CrossbarCost, GrowsQuadratically)
{
    // Sec. II-C: a 256x256 crossbar (TPU-sized) costs 64x a 32x32 one.
    EXPECT_DOUBLE_EQ(crossbarRelativeCost(32), 1.0);
    EXPECT_DOUBLE_EQ(crossbarRelativeCost(64), 4.0);
    EXPECT_DOUBLE_EQ(crossbarRelativeCost(256), 64.0);
}

TEST(BankingCost, MoreBanksCostMore)
{
    EXPECT_DOUBLE_EQ(bankingRelativeCost(32), 1.0);
    EXPECT_GT(bankingRelativeCost(256), 2.0);
    EXPECT_LT(bankingRelativeCost(8), 1.0);
}

} // namespace
} // namespace cfconv::sram
