/** @file Tests for the vector-memory (single-port SRAM array) model. */

#include <gtest/gtest.h>

#include "sram/vector_memory.h"

namespace cfconv::sram {
namespace {

VectorMemoryConfig
smallConfig()
{
    VectorMemoryConfig c;
    c.wordElems = 4;
    c.elemBytes = 4;
    c.capacityBytes = 1024;
    return c;
}

TEST(VectorMemoryConfig, WordCountFromCapacity)
{
    EXPECT_EQ(smallConfig().words(), 64); // 1024 / (4*4)
}

TEST(VectorMemory, WordRoundTrip)
{
    VectorMemory vm(smallConfig());
    const std::vector<float> word{1, 2, 3, 4};
    vm.writeWord(5, word, 0);
    EXPECT_EQ(vm.readWord(5, 1), word);
    EXPECT_EQ(vm.readCount(), 1);
    EXPECT_EQ(vm.writeCount(), 1);
}

TEST(VectorMemory, UntouchedWordsReadZero)
{
    VectorMemory vm(smallConfig());
    const auto word = vm.readWord(3, 0);
    for (float v : word)
        EXPECT_EQ(v, 0.0f);
}

TEST(VectorMemory, SameCycleDoubleUseIsConflict)
{
    VectorMemory vm(smallConfig());
    vm.readWord(0, 7);
    EXPECT_FALSE(vm.hadPortConflict());
    vm.writeWord(1, {0, 0, 0, 0}, 7); // same cycle: single port!
    EXPECT_TRUE(vm.hadPortConflict());
}

TEST(VectorMemory, AlternatingCyclesConflictFree)
{
    // The Fig 10 interleave: reads on even cycles, writes on odd.
    VectorMemory vm(smallConfig());
    for (Cycles t = 0; t < 32; t += 2) {
        vm.readWord(static_cast<Index>(t / 2), t);
        vm.writeWord(static_cast<Index>(32 + t / 2), {1, 2, 3, 4},
                     t + 1);
    }
    EXPECT_FALSE(vm.hadPortConflict());
    EXPECT_NEAR(vm.portUtilization(32), 1.0, 1e-12);
}

TEST(VectorMemory, PortUtilizationCountsBothOps)
{
    VectorMemory vm(smallConfig());
    vm.readWord(0, 0);
    vm.writeWord(1, {0, 0, 0, 0}, 8);
    EXPECT_NEAR(vm.portUtilization(16), 2.0 / 16.0, 1e-12);
    EXPECT_EQ(vm.portUtilization(0), 0.0);
}

TEST(VectorMemory, BoundsAndSizeChecks)
{
    VectorMemory vm(smallConfig());
    EXPECT_THROW(vm.readWord(-1, 0), FatalError);
    EXPECT_THROW(vm.readWord(64, 0), FatalError);
    EXPECT_THROW(vm.writeWord(0, {1, 2, 3}, 0), FatalError);
}

TEST(VectorMemory, ResetStatsClearsAccounting)
{
    VectorMemory vm(smallConfig());
    vm.readWord(0, 0);
    vm.writeWord(0, {1, 2, 3, 4}, 0);
    EXPECT_TRUE(vm.hadPortConflict());
    vm.resetStats();
    EXPECT_FALSE(vm.hadPortConflict());
    EXPECT_EQ(vm.readCount(), 0);
    EXPECT_EQ(vm.writeCount(), 0);
}

TEST(VectorMemory, RejectsDegenerateConfigs)
{
    VectorMemoryConfig c = smallConfig();
    c.wordElems = 0;
    EXPECT_THROW(VectorMemory{c}, FatalError);
    c = smallConfig();
    c.capacityBytes = 8; // below one word
    EXPECT_THROW(VectorMemory{c}, FatalError);
}

} // namespace
} // namespace cfconv::sram
