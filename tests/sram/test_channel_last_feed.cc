/** @file Tests for the channel-last banked-SRAM feed (Sec. II-C). */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "sram/channel_last_feed.h"

namespace cfconv::sram {
namespace {

using tensor::makeConv;

TEST(BankOf, SkewedLayoutSpreadsOneWindowAcrossBanks)
{
    // K = 3*3*3 = 27 <= 32 banks: every element of one sliding window
    // must land in a distinct bank.
    const auto p = makeConv(1, 3, 8, 4, 3);
    const BankedSramConfig cfg{32, 32};
    std::set<Index> banks;
    for (Index r = 0; r < 3; ++r)
        for (Index s = 0; s < 3; ++s)
            for (Index ci = 0; ci < 3; ++ci)
                banks.insert(bankOf(p, cfg, BankLayout::Skewed, 2 + r,
                                    3 + s, ci));
    EXPECT_EQ(banks.size(), 27u);
}

TEST(BankOf, NaiveLayoutCollidesWithinAWindow)
{
    // Naive modulo: elements (ih, iw, ci) and (ih+1, iw, ci) of an
    // 8-wide, 4-channel IFMap are exactly 32 apart -> same bank.
    const auto p = makeConv(1, 4, 8, 4, 3);
    const BankedSramConfig cfg{32, 32};
    std::set<Index> banks;
    Index elements = 0;
    for (Index r = 0; r < 3; ++r)
        for (Index s = 0; s < 3; ++s)
            for (Index ci = 0; ci < 4; ++ci) {
                banks.insert(bankOf(p, cfg, BankLayout::NaiveModulo,
                                    1 + r, 1 + s, ci));
                ++elements;
            }
    EXPECT_LT(banks.size(), static_cast<size_t>(elements));
}

TEST(Feed, SkewedLayoutServesWithoutStalls)
{
    // The Lym design point: careful offline layout -> no conflicts.
    const auto p = makeConv(1, 3, 16, 8, 3);
    const FeedReport r =
        replayChannelLastFeed(p, {32, 32}, BankLayout::Skewed);
    EXPECT_EQ(r.conflictStalls, 0);
    EXPECT_DOUBLE_EQ(r.slowdown(), 1.0);
}

TEST(Feed, NaiveLayoutStalls)
{
    const auto p = makeConv(1, 4, 16, 8, 3);
    const FeedReport naive =
        replayChannelLastFeed(p, {32, 32}, BankLayout::NaiveModulo);
    EXPECT_GT(naive.conflictStalls, 0);
    EXPECT_GT(naive.slowdown(), 1.3);
}

TEST(Feed, SkewBreaksDownWhenKExceedsBankCount)
{
    // K = 3*3*8 = 72 > 32 banks: even the skewed layout must
    // serialize within a beat only if two same-beat elements collide;
    // the chunked feed keeps beats at 32 elements, so a clean skew
    // still serves beat-by-beat. What must hold: total cycles equal
    // ceil(K/ports) per window when conflict-free.
    const auto p = makeConv(1, 8, 12, 8, 3);
    const FeedReport r =
        replayChannelLastFeed(p, {32, 32}, BankLayout::Skewed);
    EXPECT_EQ(r.idealCycles,
              static_cast<Cycles>(p.outH() * p.outW() *
                                  divCeil<Index>(p.gemmK(), 32)));
    EXPECT_LE(r.slowdown(), 1.2);
}

TEST(Feed, StridedConvolutionKeepsSkewConflictFree)
{
    // Stride changes which windows exist, not the within-window
    // spread; the skewed layout stays conflict-free.
    const auto p = makeConv(1, 3, 17, 8, 3, 2, 1);
    const FeedReport r =
        replayChannelLastFeed(p, {32, 32}, BankLayout::Skewed);
    EXPECT_EQ(r.conflictStalls, 0);
}

TEST(Feed, FewerBanksForceStallsEvenWhenSkewed)
{
    // The scalability point: a GEMM engine consuming 27 elements per
    // beat over an 8-bank SRAM cannot avoid conflicts.
    const auto p = makeConv(1, 3, 12, 8, 3);
    const FeedReport r =
        replayChannelLastFeed(p, {8, 32}, BankLayout::Skewed);
    EXPECT_GT(r.conflictStalls, 0);
}

TEST(BankOf, RejectsOutOfRangeElements)
{
    const auto p = makeConv(1, 3, 8, 4, 3);
    const BankedSramConfig cfg{32, 32};
    EXPECT_THROW(bankOf(p, cfg, BankLayout::Skewed, -1, 0, 0),
                 FatalError);
    EXPECT_THROW(bankOf(p, cfg, BankLayout::Skewed, 0, 8, 0),
                 FatalError);
    EXPECT_THROW(bankOf(p, cfg, BankLayout::Skewed, 0, 0, 3),
                 FatalError);
}

} // namespace
} // namespace cfconv::sram
