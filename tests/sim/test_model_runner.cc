/** @file Tests for sim::ModelRunner: exact agreement with the raw
 *  simulators' runModel, determinism of the parallel sweep, the
 *  cross-backend convenience runner, and memo-cache behaviour over
 *  whole-model runs. */

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "gpusim/gpu_sim.h"
#include "gpusim/kernel_cache.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "tpusim/layer_cache.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::sim {
namespace {

TEST(ModelRunner, MatchesTpuSimRunModelBitForBit)
{
    const auto model = models::resnet50(8);
    const tpusim::TpuSim raw((tpusim::TpuConfig::tpuV2()));
    const tpusim::TpuModelResult expect = raw.runModel(model);

    const auto accelerator = makeAccelerator("tpu-v2");
    const RunRecord got = ModelRunner(*accelerator).runModel(model);
    EXPECT_DOUBLE_EQ(got.seconds, expect.seconds);
    ASSERT_EQ(got.layers.size(), expect.layers.size());
    for (size_t i = 0; i < got.layers.size(); ++i) {
        EXPECT_DOUBLE_EQ(got.layers[i].seconds,
                         expect.layers[i].seconds)
            << "layer " << i;
    }
    EXPECT_EQ(got.model, model.name);
    EXPECT_EQ(got.batch, 8);
    EXPECT_GT(got.tflops, 0.0);
    EXPECT_GT(got.dramBytes, 0u);
}

TEST(ModelRunner, MatchesGpuSimRunModelBitForBit)
{
    const auto model = models::mobilenetv1(8); // heavily grouped
    const gpusim::GpuSim raw((gpusim::GpuConfig::v100()));
    const gpusim::GpuModelResult expect = raw.runModel(model);

    const auto accelerator = makeAccelerator("gpu-v100");
    const RunRecord got = ModelRunner(*accelerator).runModel(model);
    EXPECT_DOUBLE_EQ(got.seconds, expect.seconds);
    ASSERT_EQ(got.layers.size(), expect.layers.size());
    for (size_t i = 0; i < got.layers.size(); ++i) {
        EXPECT_DOUBLE_EQ(got.layers[i].seconds,
                         expect.layers[i].seconds)
            << "layer " << i;
    }
}

TEST(ModelRunner, GroupedSlicingRoundTripsOnBothBackends)
{
    // A grouped layer must slice identically whether it goes through
    // ModelRunner or the raw simulator: same slice geometry, same
    // block-diagonal packing, same totals.
    models::ModelSpec model;
    model.name = "grouped-roundtrip";
    models::ConvLayerSpec layer;
    layer.name = "dw3x3";
    layer.params = tensor::makeConv(8, 32, 14, 32, 3, 1, 1);
    layer.count = 3;
    layer.groups = 32;
    model.layers.push_back(layer);

    for (const std::string backend : {"tpu-v2", "gpu-v100"}) {
        const auto accelerator = makeAccelerator(backend);
        const RunRecord record =
            ModelRunner(*accelerator).runModel(model);
        ASSERT_EQ(record.layers.size(), 1u) << backend;
        EXPECT_EQ(record.layers[0].groups, 32) << backend;
        EXPECT_EQ(record.layers[0].count, 3) << backend;
        // The runner's total is exactly count * the adapter's
        // per-instance time for the same grouped layer.
        RunOptions options;
        options.groups = layer.groups;
        const LayerRecord direct =
            accelerator->runLayer(layer.params, options);
        EXPECT_DOUBLE_EQ(record.layers[0].seconds, direct.seconds)
            << backend;
        EXPECT_DOUBLE_EQ(record.seconds, 3.0 * direct.seconds)
            << backend;
    }
}

TEST(ModelRunner, ParallelSweepIsDeterministic)
{
    const auto model = models::googlenet(8);
    const auto accelerator = makeAccelerator("tpu-v2");
    const ModelRunner runner(*accelerator);
    const RunRecord a = runner.runModel(model);
    const RunRecord b = runner.runModel(model);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.tflops, b.tflops);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
}

TEST(ModelRunner, RunModelOnBackendsReturnsOneRecordPerBackend)
{
    const auto model = models::alexnet(8);
    const std::vector<std::string> names = {"tpu-v2", "tpu-v3ish",
                                            "gpu-v100"};
    const auto records = runModelOnBackends(model, names);
    ASSERT_EQ(records.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(records[i].accelerator, names[i]);
        EXPECT_EQ(records[i].model, model.name);
        EXPECT_GT(records[i].seconds, 0.0);
        EXPECT_GT(records[i].peakTflops, 0.0);
    }
    // The faster TPU core must beat the v2 baseline end to end.
    EXPECT_LT(records[1].seconds, records[0].seconds);
}

TEST(ModelRunner, SecondGpuModelRunIsServedFromTheCache)
{
    const auto model = models::resnet50(8);
    auto &cache = gpusim::KernelCache::instance();
    if (!cache.enabled())
        GTEST_SKIP() << "kernel cache disabled via env";
    cache.clear();

    const auto accelerator = makeAccelerator("gpu-v100");
    const ModelRunner runner(*accelerator);
    const RunRecord cold = runner.runModel(model);
    const std::uint64_t misses_after_cold = cache.misses();
    const std::uint64_t hits_after_cold = cache.hits();
    const RunRecord warm = runner.runModel(model);
    // The warm sweep re-simulates nothing: every conv lookup hits.
    EXPECT_EQ(cache.misses(), misses_after_cold);
    EXPECT_GE(cache.hits(),
              hits_after_cold + model.layers.size());
    EXPECT_DOUBLE_EQ(warm.seconds, cold.seconds);
}

} // namespace
} // namespace cfconv::sim
