/** @file Tests for the unified sim::Accelerator layer: factory,
 *  adapter parity with the raw simulators, grouped-conv slicing, and
 *  memo-cache key fidelity across backend run options. */

#include <gtest/gtest.h>

#include "gpusim/gpu_sim.h"
#include "gpusim/kernel_cache.h"
#include "sim/gpu_accelerator.h"
#include "sim/tpu_accelerator.h"
#include "tpusim/layer_cache.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::sim {
namespace {

using tensor::makeConv;

TEST(AcceleratorFactory, KnownBackendsConstructAndSelfReport)
{
    const auto names = knownAccelerators();
    ASSERT_GE(names.size(), 4u);
    for (const auto &name : names) {
        const auto accelerator = makeAccelerator(name);
        ASSERT_NE(accelerator, nullptr) << name;
        EXPECT_EQ(accelerator->name(), name);
        EXPECT_GT(accelerator->peakTflops(), 0.0) << name;
    }
}

TEST(AcceleratorFactory, TpuV3ishIsFasterThanV2)
{
    const auto v2 = makeAccelerator("tpu-v2");
    const auto v3 = makeAccelerator("tpu-v3ish");
    EXPECT_GT(v3->peakTflops(), 1.5 * v2->peakTflops());
}

TEST(TpuAdapter, MatchesRawSimulatorExactly)
{
    const auto p = makeConv(8, 64, 56, 64, 3, 1, 1);
    const tpusim::TpuSim raw((tpusim::TpuConfig::tpuV2()));
    const tpusim::TpuLayerResult expect = raw.runConv(p);

    const TpuAccelerator accelerator("tpu-v2",
                                     tpusim::TpuConfig::tpuV2());
    const LayerRecord got = accelerator.runLayer(p);
    EXPECT_DOUBLE_EQ(got.seconds, expect.seconds);
    EXPECT_DOUBLE_EQ(got.tflops, expect.tflops);
    EXPECT_DOUBLE_EQ(got.utilization, expect.arrayUtilization);
    EXPECT_EQ(got.dramBytes, expect.dramBytes);
    EXPECT_EQ(got.flops, p.flops());
    EXPECT_EQ(got.geometry, p.toString());
    // The TPU-only fields ride along in extras.
    EXPECT_EQ(static_cast<Index>(got.extras.at("multiTile")),
              expect.multiTile);
    EXPECT_GT(got.extras.at("pjPerMac"), 0.0);
    EXPECT_GE(got.extras.at("exposedFillFrac"), 0.0);
    EXPECT_LE(got.extras.at("exposedFillFrac"), 1.0);
}

TEST(TpuAdapter, GroupedLayerUsesBlockDiagonalPacking)
{
    const auto base = makeConv(8, 32, 14, 32, 3, 1, 1);
    const Index groups = 32; // depthwise
    const tpusim::TpuSim raw((tpusim::TpuConfig::tpuV2()));
    const tpusim::TpuLayerResult expect =
        raw.runGroupedConv(base, groups);

    const TpuAccelerator accelerator("tpu-v2",
                                     tpusim::TpuConfig::tpuV2());
    RunOptions options;
    options.groups = groups;
    const LayerRecord got = accelerator.runLayer(base, options);
    EXPECT_DOUBLE_EQ(got.seconds, expect.seconds);
    EXPECT_EQ(got.groups, groups);
}

TEST(GpuAdapter, MatchesRawSimulatorExactly)
{
    const auto p = makeConv(8, 64, 56, 64, 3, 1, 1);
    const gpusim::GpuSim raw((gpusim::GpuConfig::v100()));
    const gpusim::GpuKernelResult expect = raw.runConv(p);

    const GpuAccelerator accelerator("gpu-v100",
                                     gpusim::GpuConfig::v100());
    const LayerRecord got = accelerator.runLayer(p);
    EXPECT_DOUBLE_EQ(got.seconds, expect.seconds);
    EXPECT_EQ(got.dramBytes, expect.dramBytes);
    EXPECT_EQ(got.extras.at("memoryBound") != 0.0,
              expect.memoryBound);
    EXPECT_DOUBLE_EQ(got.extras.at("computeSeconds"),
                     expect.computeSeconds);
}

TEST(GpuAdapter, GroupedLayerRunsOneKernelPerSlice)
{
    models::ConvLayerSpec spec;
    spec.params = makeConv(8, 32, 14, 32, 3, 1, 1);
    spec.groups = 32;
    const gpusim::GpuSim raw((gpusim::GpuConfig::v100()));
    const gpusim::GpuKernelResult slice =
        raw.runConv(spec.sliceParams());

    const GpuAccelerator accelerator("gpu-v100",
                                     gpusim::GpuConfig::v100());
    RunOptions options;
    options.groups = spec.groups;
    const LayerRecord got = accelerator.runLayer(spec.params, options);
    EXPECT_DOUBLE_EQ(got.seconds,
                     slice.seconds * static_cast<double>(spec.groups));
    EXPECT_EQ(got.flops, spec.flops());
    // The record describes the full layer, not the slice.
    EXPECT_EQ(got.geometry, spec.params.toString());
}

// --- memo-cache key fidelity -------------------------------------
// Equal keys must imply equal inputs: run options that change the
// timing result must never share a cache entry.

TEST(CacheKeys, GpuInterTileReuseGetsDistinctEntries)
{
    const auto p = makeConv(8, 64, 56, 64, 3, 1, 1);
    const auto config = gpusim::GpuConfig::v100();
    gpusim::GpuRunOptions reuse_on, reuse_off;
    reuse_off.interTileReuse = false;

    const std::string key_on =
        gpusim::kernelCacheKey(config, p, reuse_on);
    const std::string key_off =
        gpusim::kernelCacheKey(config, p, reuse_off);
    EXPECT_NE(key_on, key_off);
    // Same inputs, same key (the cache would be useless otherwise).
    EXPECT_EQ(key_on, gpusim::kernelCacheKey(config, p, reuse_on));

    // Behavioural check against the live cache: an entry inserted
    // under one option set must not satisfy the other.
    auto &cache = gpusim::KernelCache::instance();
    cache.clear();
    const gpusim::GpuSim sim(config);
    const auto r_on = sim.runConv(p, reuse_on);
    const auto r_off = sim.runConv(p, reuse_off);
    gpusim::GpuKernelResult hit;
    EXPECT_TRUE(cache.lookup(key_on, &hit));
    EXPECT_EQ(hit.dramBytes, r_on.dramBytes);
    EXPECT_TRUE(cache.lookup(key_off, &hit));
    EXPECT_EQ(hit.dramBytes, r_off.dramBytes);
    // The reordering changes the DRAM traffic (this shape stays
    // compute-bound, so seconds coincide) — sharing an entry would
    // have been an observable bug, not just a key nicety.
    EXPECT_NE(r_on.dramBytes, r_off.dramBytes);
}

TEST(CacheKeys, GpuVendorTunedChangesKey)
{
    const auto p = makeConv(8, 64, 56, 64, 3, 1, 1);
    const auto config = gpusim::GpuConfig::v100();
    gpusim::GpuRunOptions stock, tuned;
    tuned.vendorTuned = true;
    EXPECT_NE(gpusim::kernelCacheKey(config, p, stock),
              gpusim::kernelCacheKey(config, p, tuned));
    EXPECT_NE(gpusim::gpuGemmCacheKey(config, 512, 512, 512, false,
                                      true),
              gpusim::gpuGemmCacheKey(config, 512, 512, 512, true,
                                      true));
}

TEST(CacheKeys, TpuMultiTileOverrideGetsDistinctEntries)
{
    const auto p = makeConv(8, 64, 56, 64, 3, 1, 1);
    const auto config = tpusim::TpuConfig::tpuV2();
    tpusim::TpuRunOptions inferred, forced;
    forced.multiTileOverride = 1; // disable multi-tile

    const std::string key_a =
        tpusim::layerCacheKey(config, p, inferred);
    const std::string key_b = tpusim::layerCacheKey(config, p, forced);
    EXPECT_NE(key_a, key_b);
    EXPECT_EQ(key_a, tpusim::layerCacheKey(config, p, inferred));

    auto &cache = tpusim::LayerCache::instance();
    cache.clear();
    const tpusim::TpuSim sim(config);
    const auto r_a = sim.runConv(p, inferred);
    const auto r_b = sim.runConv(p, forced);
    tpusim::TpuLayerResult hit;
    EXPECT_TRUE(cache.lookup(key_a, &hit));
    EXPECT_DOUBLE_EQ(hit.seconds, r_a.seconds);
    EXPECT_TRUE(cache.lookup(key_b, &hit));
    EXPECT_DOUBLE_EQ(hit.seconds, r_b.seconds);
    EXPECT_NE(r_a.multiTile, r_b.multiTile);
}

TEST(CacheKeys, ConfigChangesKey)
{
    const auto p = makeConv(8, 64, 56, 64, 3, 1, 1);
    EXPECT_NE(tpusim::layerCacheKey(tpusim::TpuConfig::tpuV2(), p, {}),
              tpusim::layerCacheKey(tpusim::TpuConfig::tpuV3ish(), p,
                                    {}));
}

} // namespace
} // namespace cfconv::sim
