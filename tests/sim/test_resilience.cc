/** @file Chaos tests for the resilient ModelRunner: fault-free parity
 *  with the legacy path, deterministic chaos schedules across thread
 *  counts and runs, retry/failover with checkpoint resume, layer
 *  validation at the accelerator boundary, and self-healing memo-cache
 *  corruption. */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "gpusim/kernel_cache.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "sim/report.h"
#include "sram/banked_sram.h"
#include "tpusim/layer_cache.h"

namespace cfconv::sim {
namespace {

/** Each test starts and ends fault-free with cold memo caches (the
 *  corrupt-insert site must see every insert, and chaos schedules must
 *  not depend on what earlier tests cached). */
class ResilienceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::FaultInjector::instance().disarm();
        tpusim::LayerCache::instance().clear();
        gpusim::KernelCache::instance().clear();
    }

    void
    TearDown() override
    {
        fault::FaultInjector::instance().disarm();
        tpusim::LayerCache::instance().clear();
        gpusim::KernelCache::instance().clear();
    }
};

/** Records rendered with a fixed (empty) meta, so comparisons see only
 *  the deterministic record payload, not wall-clock histograms. */
std::string
recordsJson(const RunRecord &record)
{
    return runRecordsJson({record}, ReportMeta{});
}

TEST_F(ResilienceTest, FaultFreeRunsBypassTheResilientPath)
{
    const auto model = models::alexnet(8);
    const auto accelerator = makeAccelerator("tpu-v2");
    const RunRecord record = ModelRunner(*accelerator).runModel(model);
    EXPECT_FALSE(record.resilience.active);
    const std::string doc = recordsJson(record);
    EXPECT_NE(doc.find("\"version\": 2"), std::string::npos);
    EXPECT_EQ(doc.find("resilience"), std::string::npos);
}

TEST_F(ResilienceTest, ArmedButQuietRunMatchesFaultFreeResults)
{
    const auto model = models::alexnet(8);
    const auto accelerator = makeAccelerator("tpu-v2");
    const ModelRunner runner(*accelerator);
    const RunRecord baseline = runner.runModel(model);

    // Armed, but the only site has rate 0: the resilient path runs and
    // must reproduce the legacy numbers exactly.
    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=1; accel.step_timeout=0")
                    .ok());
    const RunRecord quiet = runner.runModel(model);
    EXPECT_TRUE(quiet.resilience.active);
    EXPECT_EQ(quiet.resilience.faultsSeen, 0);
    EXPECT_EQ(quiet.resilience.retries, 0);
    EXPECT_EQ(quiet.resilience.failovers, 0);
    EXPECT_DOUBLE_EQ(quiet.seconds, baseline.seconds);
    EXPECT_EQ(quiet.dramBytes, baseline.dramBytes);
    ASSERT_EQ(quiet.layers.size(), baseline.layers.size());
    for (size_t i = 0; i < quiet.layers.size(); ++i) {
        EXPECT_DOUBLE_EQ(quiet.layers[i].seconds,
                         baseline.layers[i].seconds)
            << "layer " << i;
        EXPECT_EQ(quiet.layers[i].extras, baseline.layers[i].extras)
            << "layer " << i;
    }

    // The chaos document self-describes as v3 with an all-zero block.
    const std::string doc = recordsJson(quiet);
    EXPECT_NE(doc.find("\"version\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"resilience\""), std::string::npos);
    EXPECT_NE(doc.find("\"faults_seen\": 0"), std::string::npos);
}

TEST_F(ResilienceTest, ForcedFailoverCompletesTheModel)
{
    const auto model = models::alexnet(8);
    const Index n_layers = static_cast<Index>(model.layers.size());
    // Every tpu-v2 attempt times out; gpu-v100 never does (the scoped
    // rate only covers the primary), so the whole model completes on
    // the failover backend.
    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=11; accel.step_timeout@tpu-v2=1; "
                               "max_attempts=2; failover=gpu-v100")
                    .ok());
    MetricsRegistry::instance().reset();

    const auto accelerator = makeAccelerator("tpu-v2");
    const RunRecord record = ModelRunner(*accelerator).runModel(model);

    EXPECT_EQ(record.accelerator, "tpu-v2"); // the requested backend
    EXPECT_TRUE(record.resilience.active);
    EXPECT_EQ(record.resilience.failovers, 1);
    EXPECT_EQ(record.resilience.finalBackend, "gpu-v100");
    EXPECT_EQ(record.resilience.layersFailedOver, n_layers);
    EXPECT_EQ(record.resilience.layersResumed, 0); // nothing finished
    // 2 failed attempts per layer = 1 retry + 1 exhaustion, each seen.
    EXPECT_EQ(record.resilience.faultsSeen, 2 * n_layers);
    EXPECT_EQ(record.resilience.retries, n_layers);
    EXPECT_GT(record.resilience.backoffSeconds, 0.0);
    EXPECT_GT(record.seconds, 0.0);
    for (const auto &layer : record.layers) {
        EXPECT_EQ(layer.extras.at("failedOver"), 1.0) << layer.name;
        EXPECT_EQ(layer.extras.at("attempts"), 3.0) << layer.name;
    }

    // The failover layers carry gpu-v100 numbers.
    const auto gpu = makeAccelerator("gpu-v100");
    fault::FaultInjector::instance().disarm();
    const RunRecord on_gpu = ModelRunner(*gpu).runModel(model);
    ASSERT_EQ(record.layers.size(), on_gpu.layers.size());
    for (size_t i = 0; i < record.layers.size(); ++i)
        EXPECT_DOUBLE_EQ(record.layers[i].seconds,
                         on_gpu.layers[i].seconds)
            << "layer " << i;

    // The outcome is visible in the process metrics too.
    const StatGroup metrics = MetricsRegistry::instance().snapshot();
    const auto &counters = metrics.counters();
    EXPECT_EQ(counters.at("resilience.failovers"), 1.0);
    EXPECT_EQ(counters.at("resilience.retries"),
              static_cast<double>(n_layers));
    EXPECT_GE(counters.at("fault.injected.accel.step_timeout"),
              static_cast<double>(2 * n_layers));
}

TEST_F(ResilienceTest, PartialFailoverResumesFromTheCheckpoint)
{
    const auto model = models::resnet50(8);
    const Index n_layers = static_cast<Index>(model.layers.size());
    // One attempt per layer, ~half the primary dice come up bad: the
    // surviving layers are checkpointed and only the failed ones rerun
    // on the failover backend.
    ASSERT_TRUE(
        fault::FaultInjector::instance()
            .configure("seed=3; accel.step_timeout@tpu-v2=0.5; "
                       "max_attempts=1; failover=gpu-v100")
            .ok());
    const auto accelerator = makeAccelerator("tpu-v2");
    const RunRecord record = ModelRunner(*accelerator).runModel(model);

    EXPECT_EQ(record.resilience.failovers, 1);
    EXPECT_GT(record.resilience.layersFailedOver, 0);
    EXPECT_GT(record.resilience.layersResumed, 0);
    EXPECT_EQ(record.resilience.layersFailedOver +
                  record.resilience.layersResumed,
              n_layers);
    EXPECT_EQ(record.resilience.retries, 0); // max_attempts=1
    EXPECT_EQ(record.resilience.faultsSeen,
              record.resilience.layersFailedOver);
    // Exactly the failed-over layers are marked.
    Index marked = 0;
    for (const auto &layer : record.layers)
        marked += layer.extras.count("failedOver") ? 1 : 0;
    EXPECT_EQ(marked, record.resilience.layersFailedOver);
}

TEST_F(ResilienceTest, ChaosRecordsAreByteIdenticalAcrossThreadCounts)
{
    const auto model = models::resnet50(8);
    const char *spec = "seed=5; accel.step_timeout@tpu-v2=0.5; "
                       "max_attempts=2; failover=gpu-v100";
    const Index original_threads = parallel::threads();

    for (const std::string backend : {"tpu-v2", "gpu-v100"}) {
        // gpu-v100 as primary sees no scoped rate, so it also covers
        // the armed-but-quiet document shape at both thread counts.
        const auto accelerator = makeAccelerator(backend);
        const ModelRunner runner(*accelerator);
        std::vector<std::string> docs;
        for (const Index threads : {Index(1), Index(4)}) {
            parallel::setThreads(threads);
            for (int repeat = 0; repeat < 2; ++repeat) {
                tpusim::LayerCache::instance().clear();
                gpusim::KernelCache::instance().clear();
                ASSERT_TRUE(
                    fault::FaultInjector::instance().configure(spec)
                        .ok());
                docs.push_back(recordsJson(runner.runModel(model)));
            }
        }
        for (size_t i = 1; i < docs.size(); ++i)
            EXPECT_EQ(docs[0], docs[i])
                << backend << ": document " << i
                << " diverged (1 vs 4 threads / repeat)";
    }
    parallel::setThreads(original_threads);
}

TEST_F(ResilienceTest, ExhaustedBackendsSurfaceTheLastError)
{
    const auto model = models::alexnet(8);
    // Every backend in the chain times out on every attempt.
    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=2; accel.step_timeout=1; "
                               "max_attempts=2; failover=gpu-v100")
                    .ok());
    const auto accelerator = makeAccelerator("tpu-v2");
    const auto result = ModelRunner(*accelerator).tryRunModel(model);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(result.status().message().find("backends exhausted"),
              std::string::npos);
    // The fatal wrapper turns the same failure into a FatalError.
    EXPECT_THROW(ModelRunner(*accelerator).runModel(model), FatalError);
}

TEST_F(ResilienceTest, UnknownFailoverBackendIsNotFound)
{
    const auto model = models::alexnet(8);
    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=2; accel.step_timeout@tpu-v2=1; "
                               "max_attempts=1; failover=no-such")
                    .ok());
    const auto accelerator = makeAccelerator("tpu-v2");
    const auto result = ModelRunner(*accelerator).tryRunModel(model);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
    EXPECT_NE(result.status().message().find("no-such"),
              std::string::npos);
}

TEST_F(ResilienceTest, InvalidLayersFailFastWithoutBurningFailover)
{
    models::ModelSpec model;
    model.name = "bad-geometry";
    models::ConvLayerSpec layer;
    layer.name = "zero-stride";
    layer.params = tensor::makeConv(1, 8, 8, 8, 3);
    layer.params.strideH = 0;
    model.layers.push_back(layer);

    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=1; accel.step_timeout=0; "
                               "failover=gpu-v100")
                    .ok());
    const auto accelerator = makeAccelerator("tpu-v2");
    const auto result = ModelRunner(*accelerator).tryRunModel(model);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("strideH"),
              std::string::npos);

    // The legacy (disarmed) path validates too, naming the field.
    fault::FaultInjector::instance().disarm();
    EXPECT_THROW(ModelRunner(*accelerator).runModel(model), FatalError);
}

TEST_F(ResilienceTest, ValidateLayerParamsNamesTheOffendingField)
{
    const ConvParams good = tensor::makeConv(8, 64, 28, 64, 3, 1, 1);
    EXPECT_TRUE(validateLayerParams(good).ok());

    const auto field_of = [&](ConvParams p) {
        const Status s = validateLayerParams(p);
        EXPECT_FALSE(s.ok());
        EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
        return s.message();
    };

    ConvParams p = good;
    p.batch = 0;
    EXPECT_NE(field_of(p).find("batch"), std::string::npos);
    p = good;
    p.inChannels = -4;
    EXPECT_NE(field_of(p).find("inChannels"), std::string::npos);
    p = good;
    p.dilationW = 0;
    EXPECT_NE(field_of(p).find("dilationW"), std::string::npos);
    p = good;
    p.padH = -1;
    EXPECT_NE(field_of(p).find("padH"), std::string::npos);
    p = good;
    p.kernelH = 40; // dilated kernel larger than the padded input
    EXPECT_NE(field_of(p).find("kernel height"), std::string::npos);

    // Grouped-conv channel divisibility is checked at the boundary.
    RunOptions options;
    options.groups = 3;
    const Status grouped = validateLayerParams(good, options);
    ASSERT_FALSE(grouped.ok());
    EXPECT_NE(grouped.message().find("not divisible by groups"),
              std::string::npos);

    // tryRunLayer refuses the same shapes without touching a backend.
    const auto accelerator = makeAccelerator("tpu-v2");
    p = good;
    p.strideW = 0;
    const auto refused = accelerator->tryRunLayer(p);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(refused.status().message().find("strideW"),
              std::string::npos);
}

TEST_F(ResilienceTest, TryMakeAcceleratorReportsUnknownNames)
{
    for (const auto &name : knownAccelerators()) {
        const auto made = tryMakeAccelerator(name);
        ASSERT_TRUE(made.ok()) << name;
        EXPECT_EQ(made.value()->name(), name);
    }
    const auto bad = tryMakeAccelerator("tpu-v9");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
    EXPECT_NE(bad.status().message().find("tpu-v9"), std::string::npos);
}

TEST_F(ResilienceTest, CacheCorruptionIsDetectedAndSelfHeals)
{
    const auto model = models::alexnet(8);
    const auto accelerator = makeAccelerator("tpu-v2");
    const ModelRunner runner(*accelerator);
    const RunRecord baseline = runner.runModel(model);

    auto &cache = tpusim::LayerCache::instance();
    if (!cache.enabled())
        GTEST_SKIP() << "layer cache disabled via env";
    cache.clear();

    // Every layer_cache insert stores a flipped checksum; every later
    // lookup must detect the damage, evict, and recompute — so the
    // numbers never change, only the corruption counters move.
    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=1; cache.corrupt@layer_cache=1")
                    .ok());
    const RunRecord first = runner.runModel(model);
    const RunRecord second = runner.runModel(model);
    EXPECT_GT(cache.corruptionsDetected(), 0u);
    EXPECT_DOUBLE_EQ(first.seconds, baseline.seconds);
    EXPECT_DOUBLE_EQ(second.seconds, baseline.seconds);
    for (size_t i = 0; i < baseline.layers.size(); ++i) {
        EXPECT_DOUBLE_EQ(first.layers[i].seconds,
                         baseline.layers[i].seconds)
            << "layer " << i;
        EXPECT_DOUBLE_EQ(second.layers[i].seconds,
                         baseline.layers[i].seconds)
            << "layer " << i;
    }
    // The detections show up in the stats snapshot (and only when
    // nonzero, so fault-free CACHE lines never change shape).
    const StatGroup stats = cache.statsSnapshot();
    EXPECT_GT(stats.counters().at("layer_cache.corruptions_detected"),
              0.0);
    EXPECT_EQ(baseline.resilience.active, false);
}

TEST_F(ResilienceTest, SramBankReadErrorsAreDeterministicAndCounted)
{
    const sram::BankedSramConfig config{4, 8};
    const std::vector<std::vector<Index>> columns = {
        {0, 1, 2, 3}, {0, 0, 1, 1}, {3, 3, 3, 3}, {2, 0, 2, 0},
        {1, 2, 3, 0}, {0, 1, 0, 1}, {2, 2, 1, 3}, {3, 1, 0, 2},
    };
    const auto serveAll = [&columns](const sram::BankedSramConfig &c) {
        sram::BankedSram sram(c);
        Cycles total = 0;
        for (const auto &column : columns)
            total += sram.serveColumn(column);
        return std::pair<Cycles, Index>(total, sram.readErrors());
    };

    const auto [cleanCycles, cleanErrors] = serveAll(config);
    EXPECT_EQ(cleanErrors, 0);

    // A detected read error re-reads the column, so an armed run pays
    // extra cycles — and the schedule is a pure function of the seed
    // and the column index, so two armed runs agree exactly.
    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=6; sram.bank_read=0.5")
                    .ok());
    const auto [chaosCycles, chaosErrors] = serveAll(config);
    const auto [againCycles, againErrors] = serveAll(config);
    EXPECT_GT(chaosErrors, 0);
    EXPECT_GT(chaosCycles, cleanCycles);
    EXPECT_EQ(chaosCycles, againCycles);
    EXPECT_EQ(chaosErrors, againErrors);
}

TEST_F(ResilienceTest, WorkerStallsOnlyAddLatency)
{
    const auto model = models::alexnet(8);
    const auto accelerator = makeAccelerator("gpu-v100");
    const ModelRunner runner(*accelerator);
    const RunRecord baseline = runner.runModel(model);

    ASSERT_TRUE(fault::FaultInjector::instance()
                    .configure("seed=4; pool.worker_stall=1")
                    .ok());
    gpusim::KernelCache::instance().clear();
    const RunRecord stalled = runner.runModel(model);
    // A stalled worker still computes its chunk: results bit-exact.
    EXPECT_DOUBLE_EQ(stalled.seconds, baseline.seconds);
    EXPECT_EQ(stalled.dramBytes, baseline.dramBytes);
    EXPECT_EQ(stalled.resilience.faultsSeen, 0); // latency-only site
}

} // namespace
} // namespace cfconv::sim
