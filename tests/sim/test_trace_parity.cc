/** @file Tracing must be an observer: a run with the Chrome-trace
 *  recorder armed must produce bit-identical RunRecords to an untraced
 *  run. The TPU backend flips captureTrace on while tracing (a
 *  distinct memo-cache entry), so this exercises the recompute path
 *  too — any numeric drift between the traced and untraced code paths
 *  fails here. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/trace.h"
#include "gpusim/kernel_cache.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "tpusim/layer_cache.h"

namespace cfconv::sim {
namespace {

void
expectBitIdentical(const RunRecord &a, const RunRecord &b)
{
    EXPECT_EQ(a.accelerator, b.accelerator);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.batch, b.batch);
    // Bit-exact, not approximately equal: tracing may not perturb a
    // single ulp of the simulated numbers.
    EXPECT_EQ(a.peakTflops, b.peakTflops);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.tflops, b.tflops);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const LayerRecord &la = a.layers[i];
        const LayerRecord &lb = b.layers[i];
        EXPECT_EQ(la.name, lb.name);
        EXPECT_EQ(la.geometry, lb.geometry);
        EXPECT_EQ(la.count, lb.count);
        EXPECT_EQ(la.groups, lb.groups);
        EXPECT_EQ(la.seconds, lb.seconds) << la.name;
        EXPECT_EQ(la.tflops, lb.tflops) << la.name;
        EXPECT_EQ(la.utilization, lb.utilization) << la.name;
        EXPECT_EQ(la.dramBytes, lb.dramBytes) << la.name;
        EXPECT_EQ(la.flops, lb.flops) << la.name;
        EXPECT_EQ(la.extras, lb.extras) << la.name;
    }
}

void
clearMemoCaches()
{
    tpusim::LayerCache::instance().clear();
    gpusim::KernelCache::instance().clear();
}

class TraceParityTest : public ::testing::TestWithParam<const char *>
{
  protected:
    void TearDown() override { trace::resetForTest(); }
};

TEST_P(TraceParityTest, TracedRunMatchesUntracedBitExactly)
{
    const auto accelerator = makeAccelerator(GetParam());
    const auto model = models::alexnet(8);

    clearMemoCaches();
    ASSERT_FALSE(trace::enabled());
    const RunRecord untraced =
        ModelRunner(*accelerator).runModel(model);

    // Clear the memo caches so the traced run actually recomputes
    // instead of replaying the untraced results.
    clearMemoCaches();
    const std::string path =
        ::testing::TempDir() + "cfconv_parity_" + GetParam() + ".json";
    trace::start(path);
    const RunRecord traced = ModelRunner(*accelerator).runModel(model);
    // The comparison only means something if the traced run actually
    // recorded events on this backend.
    EXPECT_GT(trace::bufferedEventCountForTest(), 0u);
    ASSERT_TRUE(trace::stop());

    expectBitIdentical(untraced, traced);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Backends, TraceParityTest,
                         ::testing::Values("tpu-v2", "gpu-v100"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace cfconv::sim
