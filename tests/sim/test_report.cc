/** @file Tests for the JSON report layer: the common/report writer
 *  primitives and the versioned sim::RunRecord document emitter. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/report.h"
#include "common/trace.h"
#include "sim/model_runner.h"
#include "sim/report.h"

namespace cfconv::sim {
namespace {

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriter, BuildsNestedDocumentWithCommas)
{
    JsonWriter w;
    w.beginObject();
    w.field("version", 1LL);
    w.field("name", "x\"y");
    w.key("items");
    w.beginArray();
    w.value(1.5);
    w.value(true);
    w.valueNull();
    w.endArray();
    w.endObject();
    const std::string doc = w.str();
    EXPECT_NE(doc.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"x\\\"y\""), std::string::npos);
    EXPECT_NE(doc.find("1.5,"), std::string::npos);
    EXPECT_NE(doc.find("null"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginObject();
    w.field("nan", std::numeric_limits<double>::quiet_NaN());
    w.field("inf", std::numeric_limits<double>::infinity());
    w.endObject();
    const std::string doc = w.str();
    EXPECT_NE(doc.find("\"nan\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
    EXPECT_EQ(doc.find("nan,"), std::string::npos);
}

TEST(RunRecordJson, EmitsVersionedSchemaWithLayersAndExtras)
{
    const auto accelerator = makeAccelerator("tpu-v2");
    const RunRecord record = ModelRunner(*accelerator)
                                 .runModel(models::alexnet(8));
    const std::string doc = runRecordsJson({record});

    EXPECT_NE(doc.find("\"schema\": \"cfconv.run_record\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"version\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"accelerator\": \"tpu-v2\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"model\": \"AlexNet\""), std::string::npos);
    EXPECT_NE(doc.find("\"layers\""), std::string::npos);
    EXPECT_NE(doc.find("\"geometry\""), std::string::npos);
    // Backend extras ride along per layer.
    EXPECT_NE(doc.find("\"multiTile\""), std::string::npos);
    // v2: the document-level metrics object, with percentile
    // histograms fed by the model run above.
    EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
    EXPECT_NE(doc.find("\"counters\""), std::string::npos);
    EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
    EXPECT_NE(doc.find("\"p99\""), std::string::npos);
    // Untraced run: the trace_file key is omitted, not null.
    EXPECT_EQ(doc.find("\"trace_file\""), std::string::npos);
    // A healthy record has no nulls (every metric finite).
    EXPECT_EQ(doc.find("null"), std::string::npos);
}

TEST(RunRecordJson, TracedRunReferencesItsTraceFile)
{
    const std::string trace_path =
        ::testing::TempDir() + "cfconv_report_trace.json";
    trace::start(trace_path);
    const std::string doc = runRecordsJson({});
    trace::resetForTest(); // disarm without writing the trace
    EXPECT_NE(doc.find("\"trace_file\": \"" + jsonEscape(trace_path) +
                       "\""),
              std::string::npos);
}

TEST(RunRecordJson, NonFiniteMetricsSurfaceAsNullForValidators)
{
    RunRecord record;
    record.accelerator = "tpu-v2";
    record.model = "broken";
    record.tflops = std::numeric_limits<double>::quiet_NaN();
    const std::string doc = runRecordsJson({record});
    EXPECT_NE(doc.find("\"tflops\": null"), std::string::npos);
}

TEST(RunRecordJson, WriteRunRecordsRoundTripsThroughTheFile)
{
    const auto accelerator = makeAccelerator("gpu-v100");
    const RunRecord record = ModelRunner(*accelerator)
                                 .runModel(models::zfnet(8));
    const std::string path =
        ::testing::TempDir() + "cfconv_report_test.json";
    // Snapshot the expected document before the write: the atomic
    // writer bumps persist.atomic_writes, which would otherwise show
    // up in a post-write metrics snapshot but not in the file.
    const std::string expected = runRecordsJson({record});
    ASSERT_TRUE(writeRunRecords(path, {record}));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), expected);
    std::remove(path.c_str());
}

TEST(RunRecordJson, WriteToUnwritablePathFailsWithoutAborting)
{
    EXPECT_FALSE(writeRunRecords("/nonexistent-dir/x/y.json", {}));
}

} // namespace
} // namespace cfconv::sim
