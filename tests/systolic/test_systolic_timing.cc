/** @file Tests for the closed-form systolic timing model. */

#include <gtest/gtest.h>

#include "systolic/systolic_array.h"
#include "systolic/systolic_timing.h"
#include "tensor/tensor.h"

namespace cfconv::systolic {
namespace {

TEST(PassCycles, MatchesFunctionalArray)
{
    // Cross-validate the closed form against the cycle-level model.
    SystolicConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    for (Index m : {1, 3, 9, 17}) {
        for (Index k : {1, 2, 4}) {
            for (Index n : {1, 3, 4}) {
                Matrix a(m, k), b(k, n);
                a.fillRandom(1);
                b.fillRandom(2);
                SystolicArray array(cfg.rows, cfg.cols);
                array.loadWeights(b);
                array.run(a);
                EXPECT_EQ(passCycles(cfg, m, k, n),
                          array.lastRunCycles())
                    << m << "x" << k << "x" << n;
            }
        }
    }
}

TEST(PassCycles, ExposedWeightLoadAddsK)
{
    SystolicConfig cfg;
    cfg.rows = cfg.cols = 8;
    cfg.weightLoadOverlapped = true;
    const Cycles overlapped = passCycles(cfg, 100, 8, 8);
    cfg.weightLoadOverlapped = false;
    EXPECT_EQ(passCycles(cfg, 100, 8, 8), overlapped + 8);
}

TEST(PassCycles, RejectsOversizedTiles)
{
    SystolicConfig cfg;
    cfg.rows = cfg.cols = 4;
    EXPECT_THROW(passCycles(cfg, 10, 5, 4), FatalError);
    EXPECT_THROW(passCycles(cfg, 10, 4, 5), FatalError);
    EXPECT_THROW(passCycles(cfg, 0, 4, 4), FatalError);
}

TEST(GemmTiming, TilesOverArrayDimensions)
{
    SystolicConfig cfg;
    cfg.rows = cfg.cols = 128;
    // K = 256 -> 2 row tiles; N = 256 -> 2 col tiles; 4 passes total.
    const PassTiming t = gemmTiming(cfg, 1000, 256, 256);
    EXPECT_EQ(t.cycles, 4 * (1000u + 128 + 128 - 1));
    EXPECT_EQ(t.macs, 1000ULL * 256 * 256);
}

TEST(GemmTiming, UtilizationApproachesOneForLargeAlignedGemms)
{
    SystolicConfig cfg;
    const PassTiming t = gemmTiming(cfg, 100000, 128, 128);
    EXPECT_GT(t.utilization, 0.99);
}

TEST(GemmTiming, PartialTilesWasteCapacity)
{
    SystolicConfig cfg;
    // K = 64 uses half the rows: utilization can't exceed 0.5.
    const PassTiming t = gemmTiming(cfg, 100000, 64, 128);
    EXPECT_LT(t.utilization, 0.51);
    EXPECT_GT(t.utilization, 0.45);
}

TEST(GemmTiming, QuantizationPenaltyForBarelyOversized)
{
    SystolicConfig cfg;
    // K = 129 needs two row passes; utilization is halved vs K = 128.
    const PassTiming aligned = gemmTiming(cfg, 50000, 128, 128);
    const PassTiming spill = gemmTiming(cfg, 50000, 129, 128);
    EXPECT_GT(aligned.utilization, 1.9 * spill.utilization);
}

} // namespace
} // namespace cfconv::systolic
