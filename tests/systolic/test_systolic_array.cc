/** @file Tests for the functional weight-stationary systolic array. */

#include <gtest/gtest.h>

#include "systolic/systolic_array.h"
#include "tensor/gemm.h"

namespace cfconv::systolic {
namespace {

TEST(SystolicArray, TinyKnownGemm)
{
    // [1 2; 3 4] * [5 6; 7 8].
    Matrix a(2, 2), b(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;

    SystolicArray array(2, 2);
    array.loadWeights(b);
    const Matrix c = array.run(a);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

struct GemmDims
{
    Index m, k, n;
    Index array_rows, array_cols;
};

class SystolicGemm : public ::testing::TestWithParam<GemmDims>
{
};

TEST_P(SystolicGemm, MatchesReferenceGemm)
{
    const GemmDims d = GetParam();
    Matrix a(d.m, d.k), b(d.k, d.n), ref(d.m, d.n);
    a.fillRandom(201);
    b.fillRandom(202);
    tensor::gemm(a, b, ref);

    SystolicArray array(d.array_rows, d.array_cols);
    array.loadWeights(b);
    const Matrix c = array.run(a);
    EXPECT_LT(c.maxAbsDiff(ref), 1e-4f)
        << d.m << "x" << d.k << "x" << d.n << " on " << d.array_rows
        << "x" << d.array_cols;
}

INSTANTIATE_TEST_SUITE_P(
    DimSweep, SystolicGemm,
    ::testing::Values(GemmDims{1, 1, 1, 1, 1}, GemmDims{4, 4, 4, 4, 4},
                      GemmDims{7, 3, 5, 3, 5}, GemmDims{16, 4, 4, 4, 4},
                      GemmDims{5, 2, 6, 4, 8}, GemmDims{9, 8, 8, 8, 8},
                      GemmDims{32, 8, 4, 8, 4},
                      GemmDims{3, 6, 2, 8, 8}));

TEST(SystolicArray, SmallerWeightsLeaveArrayPartiallyUsed)
{
    // Loading a 2x3 weight block into a 4x4 array must still be exact.
    Matrix a(5, 2), b(2, 3), ref(5, 3);
    a.fillRandom(203);
    b.fillRandom(204);
    tensor::gemm(a, b, ref);

    SystolicArray array(4, 4);
    array.loadWeights(b);
    const Matrix c = array.run(a);
    EXPECT_LT(c.maxAbsDiff(ref), 1e-4f);
}

TEST(SystolicArray, RunCyclesMatchClosedForm)
{
    // Cycles = M + K + N - 1 for a single pass.
    Matrix a(10, 3), b(3, 4);
    a.fillRandom(205);
    b.fillRandom(206);
    SystolicArray array(3, 4);
    array.loadWeights(b);
    array.run(a);
    EXPECT_EQ(array.lastRunCycles(), 10u + 3 + 4 - 1);
}

TEST(SystolicArray, ProviderSeesSkewedSchedule)
{
    // Row k must be asked for A[t - k][k]: check the cycles at which
    // each row is first consulted for a real (non-bubble) element.
    Matrix b(3, 2);
    b.fill(1.0f);
    SystolicArray array(3, 2);
    array.loadWeights(b);

    std::vector<Cycles> first_real(3, ~0ULL);
    ActivationProvider provider = [&](Index k, Cycles t) -> float {
        const Index m = static_cast<Index>(t) - k;
        if (m < 0 || m >= 4)
            return 0.0f;
        if (first_real[static_cast<size_t>(k)] == ~0ULL)
            first_real[static_cast<size_t>(k)] = t;
        return 1.0f;
    };
    array.runWithProvider(provider, 4);
    EXPECT_EQ(first_real[0], 0u);
    EXPECT_EQ(first_real[1], 1u);
    EXPECT_EQ(first_real[2], 2u);
}

TEST(SystolicArray, RejectsMisuse)
{
    SystolicArray array(2, 2);
    Matrix a(2, 2);
    EXPECT_THROW(array.run(a), FatalError); // no weights loaded
    Matrix big(3, 2);
    EXPECT_THROW(array.loadWeights(big), FatalError);
    Matrix b(2, 2);
    array.loadWeights(b);
    Matrix wrong_depth(2, 3);
    EXPECT_THROW(array.run(wrong_depth), FatalError);
}

} // namespace
} // namespace cfconv::systolic
