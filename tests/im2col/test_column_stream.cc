/** @file Tests for the Fig 5 window-major column stream. */

#include <gtest/gtest.h>

#include "im2col/column_stream.h"
#include "tensor/conv_ref.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;

TEST(ColumnStream, LengthIsWindowsTimesTaps)
{
    const auto p = makeConv(2, 8, 5, 4, 3);
    const ColumnStream stream(p);
    EXPECT_EQ(stream.length(), p.gemmM() * 9);
}

TEST(ColumnStream, FirstNineCyclesMatchFig5Walkthrough)
{
    // Fig 5: 5x5 IFMap, 3x3 filter, no padding. "In the first 9
    // cycles, columns of 1A, 1B, 1C, 2A, 2B, 2C, 3A, 3B, 3C are read
    // out" -- rows 0..2 x cols 0..2 in our indexing.
    const auto p = makeConv(1, 8, 5, 4, 3);
    const ColumnStream stream(p);
    const Index expected[9][2] = {{0, 0}, {0, 1}, {0, 2}, {1, 0},
                                  {1, 1}, {1, 2}, {2, 0}, {2, 1},
                                  {2, 2}};
    for (Index t = 0; t < 9; ++t) {
        const ColumnRef ref = stream.at(t);
        EXPECT_EQ(ref.m, 0);
        EXPECT_EQ(ref.ih, expected[t][0]) << "cycle " << t;
        EXPECT_EQ(ref.iw, expected[t][1]) << "cycle " << t;
        EXPECT_FALSE(ref.padding);
    }
    // "In the next 9 cycles, columns ... 1B, 1C, 1D, ..." -- the
    // window shifts one column right.
    const ColumnRef next = stream.at(9);
    EXPECT_EQ(next.m, 1);
    EXPECT_EQ(next.ih, 0);
    EXPECT_EQ(next.iw, 1);
}

TEST(ColumnStream, ReadCountMatchesFig5Multiplicity)
{
    // "all the 1C elements are read three times": pixel (0, 2) of the
    // 5x5 input with a 3x3 filter belongs to windows (0,0), (0,1),
    // (0,2).
    const auto p = makeConv(1, 8, 5, 4, 3);
    const ColumnStream stream(p);
    EXPECT_EQ(stream.readCount(0, 2), 3);
    EXPECT_EQ(stream.readCount(0, 0), 1); // corner
    EXPECT_EQ(stream.readCount(2, 2), 9); // center
}

TEST(ColumnStream, ReadCountMatchesCol2ImMultiplicity)
{
    // The stream's per-pixel read counts are exactly the receptive-
    // field multiplicity computed by col2im over an all-ones matrix.
    const auto p = makeConv(2, 3, 6, 2, 3, 2, 1);
    const ColumnStream stream(p);
    tensor::Matrix ones(p.gemmM(), p.gemmK());
    ones.fill(1.0f);
    const tensor::Tensor mult =
        tensor::col2im(p, ones, tensor::ColumnOrder::ChannelFirst);
    // col2im multiplicity is per batch sample; the stream reads each
    // pixel once per sample.
    for (Index ih = 0; ih < p.inH; ++ih)
        for (Index iw = 0; iw < p.inW; ++iw)
            EXPECT_FLOAT_EQ(
                static_cast<float>(stream.readCount(ih, iw)),
                mult.at(0, 0, ih, iw) * static_cast<float>(p.batch))
                << "(" << ih << "," << iw << ")";
}

TEST(ColumnStream, StreamedAccumulationReproducesConvolution)
{
    // Consuming the stream column by column (rank-1 updates) must
    // reproduce direct convolution -- the execution the TPU performs.
    const auto p = makeConv(2, 3, 6, 4, 3, 2, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(81);
    filter.fillRandom(83);

    const ColumnStream stream(p);
    tensor::Matrix acc(p.gemmM(), p.gemmN());
    acc.fill(0.0f);
    for (Index t = 0; t < stream.length(); ++t) {
        const ColumnRef ref = stream.at(t);
        for (Index ci = 0; ci < p.inChannels; ++ci) {
            const tensor::RowCoord rc = tensor::rowCoord(p, ref.m);
            const float v =
                input.atPadded(rc.n, ci, ref.ih, ref.iw);
            if (v == 0.0f)
                continue;
            for (Index co = 0; co < p.outChannels; ++co)
                acc.at(ref.m, co) += v * filter.at(co, ci, ref.r,
                                                   ref.s);
        }
    }
    const tensor::Tensor out = tensor::foldOutput(p, acc);
    const tensor::Tensor ref_out =
        tensor::convDirect(p, input, filter);
    EXPECT_LT(out.maxAbsDiff(ref_out), 1e-3f);
}

TEST(ColumnStream, PaddingColumnsAreFlagged)
{
    const auto p = makeConv(1, 2, 4, 2, 3, 1, 1);
    const ColumnStream stream(p);
    const ColumnRef first = stream.at(0); // window (0,0), tap (0,0)
    EXPECT_TRUE(first.padding);
    EXPECT_EQ(first.ih, -1);
}

TEST(ColumnStream, RejectsOutOfRangeQueries)
{
    const auto p = makeConv(1, 2, 4, 2, 3);
    const ColumnStream stream(p);
    EXPECT_THROW(stream.at(-1), FatalError);
    EXPECT_THROW(stream.at(stream.length()), FatalError);
    EXPECT_THROW(stream.readCount(4, 0), FatalError);
}

} // namespace
} // namespace cfconv::im2col
