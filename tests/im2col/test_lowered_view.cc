/** @file Tests for the virtual lowered-matrix view. */

#include <gtest/gtest.h>

#include "im2col/lowered_view.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::makeInput;

TEST(LoweredView, MaterializeEqualsExplicitLowering)
{
    const ConvParams p = makeConv(2, 3, 6, 4, 3, 2, 1);
    Tensor input = makeInput(p);
    input.fillRandom(31);
    for (ColumnOrder order :
         {ColumnOrder::ChannelLast, ColumnOrder::ChannelFirst}) {
        const LoweredView view(p, order);
        const Matrix implicit = view.materialize(input);
        const Matrix explicit_m = tensor::im2colLower(p, input, order);
        EXPECT_EQ(implicit.maxAbsDiff(explicit_m), 0.0f);
    }
}

TEST(LoweredView, CoordsHonorStridePadDilation)
{
    const ConvParams p = makeConv(1, 2, 9, 1, 3, 2, 1, 2);
    const LoweredView view(p, ColumnOrder::ChannelFirst);
    // Row 0 = output (0,0); col for (r=1, s=0, ci=1).
    const Index k = tensor::colIndex(p, ColumnOrder::ChannelFirst, 1, 0,
                                     1);
    const InputCoord c = view.coordAt(0, k);
    EXPECT_EQ(c.n, 0);
    EXPECT_EQ(c.ci, 1);
    EXPECT_EQ(c.ih, 0 * 2 - 1 + 1 * 2); // oh*s - pad + r*dil = 1
    EXPECT_EQ(c.iw, 0 * 2 - 1 + 0 * 2); // -1: padding halo
    EXPECT_TRUE(c.isPadding(p));
}

TEST(LoweredView, PaddingCellsReadZero)
{
    const ConvParams p = makeConv(1, 1, 3, 1, 3, 1, 1);
    Tensor input = makeInput(p);
    input.fill(5.0f);
    const LoweredView view(p, ColumnOrder::ChannelLast);
    EXPECT_EQ(view.valueAt(input, 0, 0), 0.0f); // corner halo
    EXPECT_EQ(view.valueAt(input, 0, 4), 5.0f); // center
}

TEST(LoweredView, DuplicationFactorUnpaddedK3)
{
    // 4x4 input, k3, s1, no pad: 4 windows x 9 cells = 36 references
    // over 16 elements -> 2.25.
    const ConvParams p = makeConv(1, 1, 4, 1, 3);
    const LoweredView view(p, ColumnOrder::ChannelLast);
    EXPECT_NEAR(view.duplicationFactor(), 36.0 / 16.0, 1e-12);
}

TEST(LoweredView, DuplicationFactorApproachesKernelSizeForLargeInputs)
{
    const ConvParams p = makeConv(1, 1, 64, 1, 3, 1, 1);
    const LoweredView view(p, ColumnOrder::ChannelFirst);
    EXPECT_GT(view.duplicationFactor(), 8.5);
    EXPECT_LE(view.duplicationFactor(), 9.0);
}

TEST(LoweredView, StrideReducesDuplication)
{
    const ConvParams s1 = makeConv(1, 1, 16, 1, 3, 1, 1);
    const ConvParams s2 = makeConv(1, 1, 16, 1, 3, 2, 1);
    const double d1 =
        LoweredView(s1, ColumnOrder::ChannelFirst).duplicationFactor();
    const double d2 =
        LoweredView(s2, ColumnOrder::ChannelFirst).duplicationFactor();
    EXPECT_GT(d1, 2.0 * d2);
}

TEST(LoweredView, ColumnPermutationRoundTrips)
{
    const ConvParams p = makeConv(1, 5, 7, 2, 3, 1, 1);
    const LoweredView first(p, ColumnOrder::ChannelFirst);
    const LoweredView last(p, ColumnOrder::ChannelLast);
    for (Index k = 0; k < p.gemmK(); ++k) {
        const Index kl = first.permuteColumnTo(ColumnOrder::ChannelLast,
                                               k);
        EXPECT_EQ(last.permuteColumnTo(ColumnOrder::ChannelFirst, kl),
                  k);
    }
}

TEST(LoweredView, PermutedColumnsCarrySameValues)
{
    const ConvParams p = makeConv(2, 3, 5, 2, 3);
    Tensor input = makeInput(p);
    input.fillRandom(37);
    const LoweredView first(p, ColumnOrder::ChannelFirst);
    for (Index k = 0; k < p.gemmK(); ++k) {
        const Index kl =
            first.permuteColumnTo(ColumnOrder::ChannelLast, k);
        const LoweredView last(p, ColumnOrder::ChannelLast);
        for (Index m = 0; m < p.gemmM(); m += 3)
            EXPECT_EQ(first.valueAt(input, m, k),
                      last.valueAt(input, m, kl));
    }
}

} // namespace
} // namespace cfconv::im2col
