/** @file Tests for inter-tile reuse ordering. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "im2col/reorder.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;

TEST(OrderTiles, NaiveIsRowMajor)
{
    const ConvParams p = makeConv(1, 2, 9, 1, 3, 1, 1);
    const auto seq = orderTiles(p, TileOrder::Naive);
    ASSERT_EQ(seq.size(), 9u);
    EXPECT_EQ(seq[0], (FilterTile{0, 0}));
    EXPECT_EQ(seq[1], (FilterTile{0, 1}));
    EXPECT_EQ(seq[8], (FilterTile{2, 2}));
}

TEST(OrderTiles, GreedyIsAPermutation)
{
    const ConvParams p = makeConv(1, 2, 11, 1, 3, 2, 1);
    const auto seq = orderTiles(p, TileOrder::ReuseGreedy);
    ASSERT_EQ(seq.size(), 9u);
    std::set<std::pair<Index, Index>> seen;
    for (const auto &t : seq)
        seen.insert({t.r, t.s});
    EXPECT_EQ(seen.size(), 9u);
}

TEST(OrderTiles, GreedyChainsSameParityTilesAtStride2)
{
    // At stride 2 the greedy order should follow <0,0> with a tile of
    // the same (even, even) parity, which is the only way to overlap.
    const ConvParams p = makeConv(1, 2, 99, 1, 3, 2, 1);
    const auto seq = orderTiles(p, TileOrder::ReuseGreedy);
    EXPECT_EQ(seq[0], (FilterTile{0, 0}));
    EXPECT_EQ(seq[1].r % 2, 0);
    EXPECT_EQ(seq[1].s % 2, 0);
}

TEST(SequenceReuse, GreedyBeatsNaiveAtStride2)
{
    // Sec. V: naive order has no consecutive overlap at stride 2;
    // reordering recovers it (the 0,0 -> 0,2 example of Fig 12).
    const ConvParams p = makeConv(1, 2, 99, 1, 3, 2, 1);
    const double naive =
        sequenceReuseFraction(p, orderTiles(p, TileOrder::Naive));
    const double greedy =
        sequenceReuseFraction(p, orderTiles(p, TileOrder::ReuseGreedy));
    EXPECT_LT(naive, 0.05);
    EXPECT_GT(greedy, 0.5);
}

TEST(SequenceReuse, PaperNinetySixPercentExample)
{
    // "When the IFMap size increases to 99x99, the working set overlap
    // between these two decomposed filters becomes 96%."
    const ConvParams p = makeConv(1, 1, 99, 1, 3, 2);
    const double ov = tileOverlap(p, {0, 0}, {0, 2});
    EXPECT_NEAR(ov, 0.96, 0.02);
}

TEST(SequenceFillElems, ReorderingReducesTraffic)
{
    const ConvParams p = makeConv(1, 4, 57, 2, 3, 2, 1);
    const Index naive =
        sequenceFillElems(p, orderTiles(p, TileOrder::Naive));
    const Index greedy =
        sequenceFillElems(p, orderTiles(p, TileOrder::ReuseGreedy));
    EXPECT_LT(greedy, naive);
}

TEST(SequenceFillElems, FirstTileAlwaysFullyLoaded)
{
    const ConvParams p = makeConv(1, 2, 9, 1, 3, 1, 1);
    const std::vector<FilterTile> single{{1, 1}};
    EXPECT_EQ(sequenceFillElems(p, single), tileFillElems(p, {1, 1}));
}

TEST(SequenceFillElems, NeverBelowLargestTile)
{
    const ConvParams p = makeConv(1, 3, 17, 2, 3, 1, 1);
    for (TileOrder ord : {TileOrder::Naive, TileOrder::ReuseGreedy}) {
        const auto seq = orderTiles(p, ord);
        Index largest = 0;
        for (const auto &t : seq)
            largest = std::max(largest, tileFillElems(p, t));
        EXPECT_GE(sequenceFillElems(p, seq), largest);
    }
}

TEST(SequenceReuse, Stride1AdjacentOverlapIsHighForBothOrders)
{
    const ConvParams p = makeConv(1, 2, 56, 2, 3, 1, 1);
    const double naive =
        sequenceReuseFraction(p, orderTiles(p, TileOrder::Naive));
    EXPECT_GT(naive, 0.9);
}

} // namespace
} // namespace cfconv::im2col
