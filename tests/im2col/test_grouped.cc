/** @file Tests for grouped / depthwise convolution. */

#include <gtest/gtest.h>

#include "im2col/grouped.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::Tensor;

GroupedConvParams
makeGrouped(Index batch, Index ci, Index hw, Index co, Index k,
            Index groups, Index stride = 1, Index pad = 0)
{
    GroupedConvParams p;
    p.base = makeConv(batch, ci, hw, co, k, stride, pad);
    p.groups = groups;
    p.validate();
    return p;
}

Tensor
makeGroupFilter(const GroupedConvParams &p, std::uint64_t seed)
{
    Tensor f(p.base.outChannels, p.groupParams().inChannels,
             p.base.kernelH, p.base.kernelW);
    f.fillRandom(seed);
    return f;
}

TEST(GroupedConv, OneGroupEqualsRegularConvolution)
{
    const GroupedConvParams p = makeGrouped(2, 4, 6, 6, 3, 1, 1, 1);
    Tensor input = tensor::makeInput(p.base);
    input.fillRandom(111);
    const Tensor filter = makeGroupFilter(p, 113);
    const Tensor grouped = convGroupedDirect(p, input, filter);
    const Tensor regular = tensor::convDirect(p.base, input, filter);
    EXPECT_LT(grouped.maxAbsDiff(regular), 1e-4f);
}

TEST(GroupedConv, GroupsAreChannelIndependent)
{
    // With 2 groups, output channels of group 0 must not change when
    // only group-1 input channels change.
    const GroupedConvParams p = makeGrouped(1, 4, 5, 4, 3, 2);
    Tensor input = tensor::makeInput(p.base);
    input.fillRandom(117);
    const Tensor filter = makeGroupFilter(p, 119);
    const Tensor base_out = convGroupedDirect(p, input, filter);

    // Perturb a group-1 channel.
    input.at(0, 3, 2, 2) += 10.0f;
    const Tensor new_out = convGroupedDirect(p, input, filter);
    for (Index h = 0; h < base_out.h(); ++h)
        for (Index w = 0; w < base_out.w(); ++w) {
            EXPECT_EQ(new_out.at(0, 0, h, w), base_out.at(0, 0, h, w));
            EXPECT_EQ(new_out.at(0, 1, h, w), base_out.at(0, 1, h, w));
        }
    // And group-1 outputs do change.
    float diff = 0.0f;
    for (Index h = 0; h < base_out.h(); ++h)
        for (Index w = 0; w < base_out.w(); ++w)
            diff += std::abs(new_out.at(0, 2, h, w) -
                             base_out.at(0, 2, h, w));
    EXPECT_GT(diff, 0.0f);
}

struct GroupCase
{
    Index batch, ci, hw, co, k, groups, stride, pad;
};

class GroupedSweep : public ::testing::TestWithParam<GroupCase>
{
};

TEST_P(GroupedSweep, ImplicitEqualsDirect)
{
    const GroupCase c = GetParam();
    const GroupedConvParams p =
        makeGrouped(c.batch, c.ci, c.hw, c.co, c.k, c.groups, c.stride,
                    c.pad);
    Tensor input = tensor::makeInput(p.base);
    input.fillRandom(121);
    const Tensor filter = makeGroupFilter(p, 123);

    const Tensor direct = convGroupedDirect(p, input, filter);
    ImplicitConvOptions options;
    options.tilesPerGroup =
        tpuMultiTileParam(128, p.groupParams());
    const Tensor implicit =
        convGroupedImplicit(p, input, filter, options);
    EXPECT_LT(implicit.maxAbsDiff(direct), 1e-3f)
        << p.base.toString() << " G=" << c.groups;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupedSweep,
    ::testing::Values(GroupCase{1, 4, 6, 4, 3, 2, 1, 1},
                      GroupCase{2, 6, 5, 6, 3, 3, 1, 0},
                      GroupCase{1, 8, 7, 8, 3, 8, 1, 1},  // depthwise
                      GroupCase{2, 4, 8, 8, 3, 4, 2, 1},
                      GroupCase{1, 6, 6, 12, 1, 2, 1, 0},
                      GroupCase{1, 8, 9, 8, 3, 8, 2, 1})); // dw s2

TEST(GroupedConv, FlopsScaleInverselyWithGroups)
{
    const GroupedConvParams g1 = makeGrouped(1, 8, 8, 8, 3, 1, 1, 1);
    const GroupedConvParams g4 = makeGrouped(1, 8, 8, 8, 3, 4, 1, 1);
    EXPECT_EQ(g1.flops(), 4 * g4.flops());
}

TEST(GroupedConv, DepthwiseRowOccupancyIsPoor)
{
    // Depthwise (C_I/G = 1): even with the multi-tile optimization
    // (capped at W_F = 3), only 3 of 128 rows work — the honest
    // limitation of the channel-first schedule for depthwise layers.
    const GroupedConvParams dw = makeGrouped(1, 64, 16, 64, 3, 64, 1,
                                             1);
    const double occ = groupedRowOccupancy(dw, 128);
    EXPECT_NEAR(occ, 3.0 / 128.0, 1e-9);

    // A 4-group layer with C_I/G = 16 fills 48 rows.
    const GroupedConvParams g4 = makeGrouped(1, 64, 16, 64, 3, 4, 1,
                                             1);
    EXPECT_NEAR(groupedRowOccupancy(g4, 128), 48.0 / 128.0, 1e-9);
}

TEST(GroupedConv, RejectsIndivisibleChannels)
{
    GroupedConvParams p;
    p.base = makeConv(1, 6, 5, 6, 3);
    p.groups = 4;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(GroupedConv, RejectsWrongFilterShape)
{
    const GroupedConvParams p = makeGrouped(1, 4, 5, 4, 3, 2);
    Tensor input = tensor::makeInput(p.base);
    Tensor wrong(p.base.outChannels, p.base.inChannels, 3, 3);
    EXPECT_THROW(convGroupedDirect(p, input, wrong), FatalError);
}

} // namespace
} // namespace cfconv::im2col
