/** @file Property tests: the implicit engine equals direct convolution. */

#include <gtest/gtest.h>

#include "im2col/implicit_conv.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::makeFilter;
using tensor::makeInput;

struct ImplicitCase
{
    Index batch, ci, hw, co, k, s, p, d;
    Index tiles;
    TileOrder order;
};

class ImplicitConv : public ::testing::TestWithParam<ImplicitCase>
{
};

TEST_P(ImplicitConv, EqualsDirectConv)
{
    const ImplicitCase c = GetParam();
    const ConvParams p =
        makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p, c.d);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(101);
    filter.fillRandom(103);

    ImplicitConvOptions options;
    options.tilesPerGroup = c.tiles;
    options.order = c.order;
    ImplicitConvStats stats;
    const tensor::Tensor out =
        convImplicit(p, input, filter, options, &stats);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(out.maxAbsDiff(ref), 1e-3f) << p.toString();
    EXPECT_GT(stats.tileGemms, 0);
    EXPECT_EQ(stats.macFlops >= p.flops(), true);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, ImplicitConv,
    ::testing::Values(
        ImplicitCase{1, 1, 5, 1, 3, 1, 0, 1, 1, TileOrder::Naive},
        ImplicitCase{2, 3, 6, 4, 3, 1, 1, 1, 1, TileOrder::Naive},
        ImplicitCase{2, 3, 6, 4, 3, 2, 1, 1, 3, TileOrder::Naive},
        ImplicitCase{1, 4, 8, 2, 5, 1, 2, 1, 5, TileOrder::Naive},
        ImplicitCase{1, 2, 9, 3, 3, 1, 0, 2, 2, TileOrder::Naive},
        ImplicitCase{2, 2, 10, 2, 3, 2, 2, 2, 9, TileOrder::Naive},
        ImplicitCase{1, 3, 7, 2, 3, 1, 1, 1, 2, TileOrder::ReuseGreedy},
        ImplicitCase{2, 4, 9, 4, 3, 2, 1, 1, 3, TileOrder::ReuseGreedy},
        ImplicitCase{1, 2, 11, 2, 3, 4, 1, 1, 1, TileOrder::ReuseGreedy},
        ImplicitCase{1, 6, 6, 6, 1, 1, 0, 1, 1, TileOrder::Naive},
        ImplicitCase{1, 2, 8, 2, 2, 2, 0, 1, 4, TileOrder::ReuseGreedy}));

TEST(ImplicitConv, StatsReflectMultiTileGrouping)
{
    const ConvParams p = makeConv(1, 4, 8, 4, 3, 1, 1);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(1);
    filter.fillRandom(2);

    ImplicitConvStats s1, s3;
    convImplicit(p, input, filter, {1, TileOrder::Naive}, &s1);
    convImplicit(p, input, filter, {3, TileOrder::Naive}, &s3);
    EXPECT_EQ(s1.tileGemms, 9);
    EXPECT_EQ(s3.tileGemms, 3);
    // Same data volume enters the GEMMs either way.
    EXPECT_EQ(s1.fillElems, s3.fillElems);
    // But the merged operand is T times wider.
    EXPECT_NEAR(static_cast<double>(s3.peakWorkspace) /
                    static_cast<double>(s1.peakWorkspace),
                3.0, 1e-9);
}

TEST(ImplicitConv, TpuStrategyPicksPaperParameter)
{
    const ConvParams p = makeConv(1, 8, 16, 8, 3, 1, 1);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(3);
    filter.fillRandom(4);
    ImplicitConvStats stats;
    const tensor::Tensor out =
        convImplicitTpuStrategy(p, input, filter, 128, &stats);
    // T = MIN(128/8, 3) = 3 -> ceil(9/3) = 3 merged GEMMs.
    EXPECT_EQ(stats.tileGemms, 3);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(out.maxAbsDiff(ref), 1e-3f);
}

TEST(ImplicitConv, RejectsBadOptions)
{
    const ConvParams p = makeConv(1, 2, 5, 2, 3);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    EXPECT_THROW(convImplicit(p, input, filter, {0, TileOrder::Naive}),
                 FatalError);
}

TEST(ImplicitConv, FillElemsShrinkWithStride)
{
    // The stride-insensitivity argument: per-tile fills shrink with
    // stride^2 just like the compute does.
    const ConvParams s1 = makeConv(1, 4, 33, 4, 3, 1, 1);
    const ConvParams s2 = makeConv(1, 4, 33, 4, 3, 2, 1);
    tensor::Tensor in1 = makeInput(s1), f1 = makeFilter(s1);
    tensor::Tensor in2 = makeInput(s2), f2 = makeFilter(s2);
    in1.fillRandom(9);
    f1.fillRandom(10);
    in2.fillRandom(9);
    f2.fillRandom(10);
    ImplicitConvStats st1, st2;
    convImplicit(s1, in1, f1, {}, &st1);
    convImplicit(s2, in2, f2, {}, &st2);
    const double fill_ratio = static_cast<double>(st1.fillElems) /
                              static_cast<double>(st2.fillElems);
    const double flop_ratio = static_cast<double>(s1.flops()) /
                              static_cast<double>(s2.flops());
    EXPECT_NEAR(fill_ratio, flop_ratio, flop_ratio * 0.2);
}

} // namespace
} // namespace cfconv::im2col
