/** @file Tests for tile-level weight sparsity. */

#include <gtest/gtest.h>

#include "im2col/sparse.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::Tensor;

TEST(PruneFilter, MagnitudeThresholdZeroesSmallWeights)
{
    const auto p = makeConv(1, 2, 5, 2, 3);
    Tensor filter = tensor::makeFilter(p);
    filter.fillRandom(211);
    const Tensor pruned = pruneFilter(filter, 0.5f);
    for (Index i = 0; i < pruned.size(); ++i) {
        const float orig = filter.data()[i];
        const float v = pruned.data()[i];
        if (std::abs(orig) < 0.5f)
            EXPECT_EQ(v, 0.0f);
        else
            EXPECT_EQ(v, orig);
    }
}

TEST(PruneFilterTiles, RemovesExactlyTheRequestedFraction)
{
    const auto p = makeConv(1, 4, 7, 4, 3, 1, 1);
    Tensor filter = tensor::makeFilter(p);
    filter.fillRandom(213);
    // Prune 1/3 of the 9 taps -> 3 skippable tiles.
    const Tensor pruned = pruneFilterTiles(p, filter, 3.0 / 9.0);
    const SparsityReport report = analyzeSparsity(p, pruned);
    EXPECT_EQ(report.skippableTiles, 3);
    EXPECT_NEAR(report.passSavings(), 3.0 / 9.0, 1e-12);
}

TEST(PruneFilterTiles, PrunesLowestMassTiles)
{
    const auto p = makeConv(1, 2, 5, 2, 3);
    Tensor filter = tensor::makeFilter(p);
    filter.fill(1.0f);
    // Make tap <1,1> the lightest.
    for (Index co = 0; co < 2; ++co)
        for (Index ci = 0; ci < 2; ++ci)
            filter.at(co, ci, 1, 1) = 0.01f;
    const Tensor pruned = pruneFilterTiles(p, filter, 1.0 / 9.0);
    for (Index co = 0; co < 2; ++co)
        for (Index ci = 0; ci < 2; ++ci) {
            EXPECT_EQ(pruned.at(co, ci, 1, 1), 0.0f);
            EXPECT_EQ(pruned.at(co, ci, 0, 0), 1.0f);
        }
}

TEST(AnalyzeSparsity, DenseFilterHasNoSkippableTiles)
{
    const auto p = makeConv(1, 3, 6, 3, 3);
    Tensor filter = tensor::makeFilter(p);
    filter.fill(1.0f);
    const SparsityReport r = analyzeSparsity(p, filter);
    EXPECT_EQ(r.skippableTiles, 0);
    EXPECT_DOUBLE_EQ(r.overallDensity, 1.0);
    EXPECT_EQ(r.tiles.size(), 9u);
}

struct SparseCase
{
    Index batch, ci, hw, co, k, s, p;
    double prune_fraction;
};

class SparseConv : public ::testing::TestWithParam<SparseCase>
{
};

TEST_P(SparseConv, SkippingZeroTilesIsExact)
{
    const SparseCase c = GetParam();
    const auto p = makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p);
    Tensor input = tensor::makeInput(p);
    Tensor filter = tensor::makeFilter(p);
    input.fillRandom(217);
    filter.fillRandom(219);
    const Tensor pruned = pruneFilterTiles(p, filter, c.prune_fraction);

    Index skipped = 0;
    const Tensor sparse = convImplicitSparse(p, input, pruned, &skipped);
    const Tensor dense = tensor::convDirect(p, input, pruned);
    EXPECT_LT(sparse.maxAbsDiff(dense), 1e-3f) << p.toString();

    const SparsityReport report = analyzeSparsity(p, pruned);
    EXPECT_EQ(skipped, report.skippableTiles);
    if (c.prune_fraction > 0.0) {
        EXPECT_GT(skipped, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseConv,
    ::testing::Values(SparseCase{1, 2, 6, 2, 3, 1, 1, 0.0},
                      SparseCase{2, 3, 6, 4, 3, 1, 1, 0.33},
                      SparseCase{1, 4, 8, 2, 3, 2, 1, 0.55},
                      SparseCase{2, 2, 7, 3, 5, 1, 2, 0.5},
                      SparseCase{1, 3, 9, 2, 3, 1, 0, 1.0}));

TEST(SparseConv, FullyPrunedFilterYieldsZeroOutput)
{
    const auto p = makeConv(1, 2, 5, 2, 3);
    Tensor input = tensor::makeInput(p);
    input.fillRandom(223);
    Tensor filter = tensor::makeFilter(p);
    filter.fill(0.0f);
    Index skipped = 0;
    const Tensor out = convImplicitSparse(p, input, filter, &skipped);
    EXPECT_EQ(skipped, 9);
    Tensor zeros(p.batch, p.outChannels, p.outH(), p.outW());
    EXPECT_EQ(out.maxAbsDiff(zeros), 0.0f);
}

TEST(SparseConv, RejectsBadArguments)
{
    const auto p = makeConv(1, 2, 5, 2, 3);
    Tensor filter = tensor::makeFilter(p);
    EXPECT_THROW(pruneFilter(filter, -1.0f), FatalError);
    EXPECT_THROW(pruneFilterTiles(p, filter, 1.5), FatalError);
}

} // namespace
} // namespace cfconv::im2col
