/** @file Tests for deformable convolution under the channel-first
 *  decomposition. */

#include <gtest/gtest.h>

#include "im2col/deformable.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::makeFilter;
using tensor::makeInput;
using tensor::Tensor;

TEST(BilinearSample, IntegerCoordinatesAreExact)
{
    Tensor t(1, 1, 3, 3);
    t.fillRamp();
    EXPECT_EQ(bilinearSample(t, 0, 0, 1.0, 2.0), t.at(0, 0, 1, 2));
}

TEST(BilinearSample, MidpointAverages)
{
    Tensor t(1, 1, 2, 2);
    t.at(0, 0, 0, 0) = 0.0f;
    t.at(0, 0, 0, 1) = 2.0f;
    t.at(0, 0, 1, 0) = 4.0f;
    t.at(0, 0, 1, 1) = 6.0f;
    EXPECT_FLOAT_EQ(bilinearSample(t, 0, 0, 0.5, 0.5), 3.0f);
    EXPECT_FLOAT_EQ(bilinearSample(t, 0, 0, 0.0, 0.5), 1.0f);
}

TEST(BilinearSample, OutOfRangeFadesToZeroPadding)
{
    Tensor t(1, 1, 2, 2);
    t.fill(8.0f);
    // Halfway off the top edge: 50% padding.
    EXPECT_FLOAT_EQ(bilinearSample(t, 0, 0, -0.5, 0.0), 4.0f);
    // Fully outside.
    EXPECT_FLOAT_EQ(bilinearSample(t, 0, 0, -2.0, 0.0), 0.0f);
}

TEST(Deformable, ZeroOffsetsEqualRigidConvolution)
{
    const ConvParams p = makeConv(2, 3, 6, 4, 3, 1, 1);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(51);
    filter.fillRandom(53);
    const auto offsets = DeformableOffsets::zeros(p);

    const Tensor rigid = tensor::convDirect(p, input, filter);
    const Tensor direct =
        convDeformableDirect(p, input, offsets, filter);
    const Tensor implicit =
        convDeformableImplicit(p, input, offsets, filter);
    EXPECT_LT(direct.maxAbsDiff(rigid), 1e-4f);
    EXPECT_LT(implicit.maxAbsDiff(rigid), 1e-4f);
}

struct DeformCase
{
    Index batch, ci, hw, co, k, s, p;
    double scale;
};

class DeformableSweep : public ::testing::TestWithParam<DeformCase>
{
};

TEST_P(DeformableSweep, ImplicitEqualsDirectWithRandomOffsets)
{
    const DeformCase c = GetParam();
    const ConvParams p =
        makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(61);
    filter.fillRandom(67);
    const auto offsets = DeformableOffsets::random(p, 71, c.scale);

    const Tensor direct =
        convDeformableDirect(p, input, offsets, filter);
    const Tensor implicit =
        convDeformableImplicit(p, input, offsets, filter);
    EXPECT_LT(implicit.maxAbsDiff(direct), 1e-3f) << p.toString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeformableSweep,
    ::testing::Values(DeformCase{1, 1, 5, 1, 3, 1, 0, 1.0},
                      DeformCase{2, 3, 6, 2, 3, 1, 1, 0.5},
                      DeformCase{1, 2, 8, 3, 3, 2, 1, 2.0},
                      DeformCase{2, 2, 7, 2, 5, 1, 2, 1.5},
                      DeformCase{1, 4, 6, 4, 1, 1, 0, 3.0}));

TEST(Deformable, OffsetsShiftSampling)
{
    // A (+1, 0) offset on every tap of a 1x1 conv shifts the input by
    // one row.
    const ConvParams p = makeConv(1, 1, 4, 1, 1);
    Tensor input = makeInput(p);
    input.fillRamp();
    Tensor filter = makeFilter(p);
    filter.fill(1.0f);
    auto offsets = DeformableOffsets::zeros(p);
    for (Index i = 0; i < offsets.offsetY.size(); ++i)
        offsets.offsetY.data()[i] = 1.0f;

    const Tensor out =
        convDeformableImplicit(p, input, offsets, filter);
    for (Index h = 0; h < 3; ++h)
        for (Index w = 0; w < 4; ++w)
            EXPECT_FLOAT_EQ(out.at(0, 0, h, w),
                            input.at(0, 0, h + 1, w));
    // The last row samples the padding halo.
    EXPECT_FLOAT_EQ(out.at(0, 0, 3, 0), 0.0f);
}

TEST(Deformable, FillBoundIsFourTimesRigid)
{
    const ConvParams p = makeConv(2, 4, 9, 2, 3, 2, 1);
    const FilterTile tile{1, 1};
    EXPECT_EQ(deformableTileFillBound(p, tile),
              4 * tileFillElems(p, tile));
}

TEST(Deformable, RejectsMismatchedOffsets)
{
    const ConvParams p = makeConv(1, 2, 6, 2, 3);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    const ConvParams other = makeConv(1, 2, 8, 2, 3);
    const auto wrong = DeformableOffsets::zeros(other);
    EXPECT_THROW(convDeformableImplicit(p, input, wrong, filter),
                 FatalError);
}

} // namespace
} // namespace cfconv::im2col
