/** @file Tests for training-mode (backward) convolution passes. */

#include <gtest/gtest.h>

#include "im2col/conv_backward.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::makeFilter;
using tensor::makeInput;
using tensor::Tensor;

Tensor
makeGradOut(const ConvParams &p, std::uint64_t seed)
{
    Tensor g(p.batch, p.outChannels, p.outH(), p.outW());
    g.fillRandom(seed);
    return g;
}

struct BackwardCase
{
    Index batch, ci, hw, co, k, s, p, d;
};

class ConvBackward : public ::testing::TestWithParam<BackwardCase>
{
};

TEST_P(ConvBackward, ImplicitDataGradEqualsDirect)
{
    const BackwardCase c = GetParam();
    const ConvParams p =
        makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p, c.d);
    Tensor filter = makeFilter(p);
    filter.fillRandom(11);
    const Tensor grad_out = makeGradOut(p, 13);

    const Tensor ref = convBackwardDataDirect(p, grad_out, filter);
    const Tensor got = convBackwardDataImplicit(p, grad_out, filter);
    EXPECT_LT(got.maxAbsDiff(ref), 1e-3f) << p.toString();
}

TEST_P(ConvBackward, ImplicitFilterGradEqualsDirect)
{
    const BackwardCase c = GetParam();
    const ConvParams p =
        makeConv(c.batch, c.ci, c.hw, c.co, c.k, c.s, c.p, c.d);
    Tensor input = makeInput(p);
    input.fillRandom(17);
    const Tensor grad_out = makeGradOut(p, 19);

    const Tensor ref = convBackwardFilterDirect(p, input, grad_out);
    const Tensor got = convBackwardFilterImplicit(p, input, grad_out);
    EXPECT_LT(got.maxAbsDiff(ref), 1e-3f) << p.toString();
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, ConvBackward,
    ::testing::Values(BackwardCase{1, 1, 5, 1, 3, 1, 0, 1},
                      BackwardCase{2, 3, 6, 4, 3, 1, 1, 1},
                      BackwardCase{2, 4, 7, 3, 3, 2, 1, 1},
                      BackwardCase{1, 2, 9, 2, 3, 1, 0, 2},
                      BackwardCase{1, 3, 8, 2, 5, 1, 2, 1},
                      BackwardCase{3, 2, 6, 2, 2, 2, 0, 1},
                      BackwardCase{1, 4, 11, 3, 3, 4, 1, 1}));

TEST(ConvBackward, DataGradientViaFiniteDifference)
{
    // d(sum(Y))/dX[i] must equal the backward-data gradient of an
    // all-ones dY.
    const ConvParams p = makeConv(1, 2, 5, 2, 3, 1, 1);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(23);
    filter.fillRandom(29);

    Tensor ones(p.batch, p.outChannels, p.outH(), p.outW());
    ones.fill(1.0f);
    const Tensor analytic = convBackwardDataImplicit(p, ones, filter);

    const float eps = 1e-2f;
    auto loss = [&](const Tensor &x) {
        const Tensor y = tensor::convDirect(p, x, filter);
        float total = 0.0f;
        for (Index n = 0; n < y.n(); ++n)
            for (Index c = 0; c < y.c(); ++c)
                for (Index h = 0; h < y.h(); ++h)
                    for (Index w = 0; w < y.w(); ++w)
                        total += y.at(n, c, h, w);
        return total;
    };
    // Sample a few input coordinates.
    const Index coords[][3] = {{0, 2, 2}, {1, 0, 0}, {0, 4, 4},
                               {1, 3, 1}};
    for (const auto &c : coords) {
        Tensor bumped = input;
        bumped.at(0, c[0], c[1], c[2]) += eps;
        const float numeric = (loss(bumped) - loss(input)) / eps;
        EXPECT_NEAR(analytic.at(0, c[0], c[1], c[2]), numeric, 1e-2f);
    }
}

TEST(ConvBackward, FilterGradientViaFiniteDifference)
{
    const ConvParams p = makeConv(2, 2, 5, 2, 3);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(31);
    filter.fillRandom(37);

    Tensor ones(p.batch, p.outChannels, p.outH(), p.outW());
    ones.fill(1.0f);
    const Tensor analytic = convBackwardFilterImplicit(p, input, ones);

    const float eps = 1e-2f;
    auto loss = [&](const Tensor &w) {
        const Tensor y = tensor::convDirect(p, input, w);
        float total = 0.0f;
        for (Index n = 0; n < y.n(); ++n)
            for (Index c = 0; c < y.c(); ++c)
                for (Index hh = 0; hh < y.h(); ++hh)
                    for (Index ww = 0; ww < y.w(); ++ww)
                        total += y.at(n, c, hh, ww);
        return total;
    };
    for (Index co = 0; co < 2; ++co) {
        Tensor bumped = filter;
        bumped.at(co, 1, 1, 1) += eps;
        const float numeric = (loss(bumped) - loss(filter)) / eps;
        EXPECT_NEAR(analytic.at(co, 1, 1, 1), numeric, 2e-2f);
    }
}

TEST(ConvBackward, RejectsMismatchedGradOut)
{
    const ConvParams p = makeConv(1, 2, 5, 2, 3);
    Tensor filter = makeFilter(p);
    Tensor wrong(1, 2, 2, 2); // wrong OFMap dims
    EXPECT_THROW(convBackwardDataImplicit(p, wrong, filter),
                 FatalError);
    Tensor input = makeInput(p);
    EXPECT_THROW(convBackwardFilterImplicit(p, input, wrong),
                 FatalError);
}

TEST(ConvBackward, ZeroGradOutGivesZeroGradients)
{
    const ConvParams p = makeConv(1, 2, 6, 3, 3, 2, 1);
    Tensor input = makeInput(p);
    Tensor filter = makeFilter(p);
    input.fillRandom(41);
    filter.fillRandom(43);
    Tensor zeros(p.batch, p.outChannels, p.outH(), p.outW());
    EXPECT_EQ(convBackwardDataImplicit(p, zeros, filter)
                  .maxAbsDiff(makeInput(p)),
              0.0f);
    EXPECT_EQ(convBackwardFilterImplicit(p, input, zeros)
                  .maxAbsDiff(makeFilter(p)),
              0.0f);
}

} // namespace
} // namespace cfconv::im2col
