/** @file Tests for filter decomposition and tile footprints. */

#include <gtest/gtest.h>

#include "im2col/filter_decomp.h"
#include "tensor/conv_ref.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::makeFilter;
using tensor::makeInput;

TEST(DecomposeFilter, EnumeratesRowMajor)
{
    const ConvParams p = makeConv(1, 2, 5, 2, 3);
    const auto tiles = decomposeFilter(p);
    ASSERT_EQ(tiles.size(), 9u);
    EXPECT_EQ(tiles[0], (FilterTile{0, 0}));
    EXPECT_EQ(tiles[1], (FilterTile{0, 1}));
    EXPECT_EQ(tiles[3], (FilterTile{1, 0}));
    EXPECT_EQ(tiles[8], (FilterTile{2, 2}));
}

TEST(TileFootprint, Stride1NoPad)
{
    // 5x5 input, k3: tile <0,0> touches rows/cols [0,3), <2,2> [2,5).
    const ConvParams p = makeConv(1, 1, 5, 1, 3);
    const TileFootprint f00 = tileFootprint(p, {0, 0});
    EXPECT_EQ(f00.ihBegin, 0);
    EXPECT_EQ(f00.ihEnd, 3);
    EXPECT_EQ(f00.positions(), 9);
    const TileFootprint f22 = tileFootprint(p, {2, 2});
    EXPECT_EQ(f22.ihBegin, 2);
    EXPECT_EQ(f22.ihEnd, 5);
    EXPECT_EQ(f22.positions(), 9);
}

TEST(TileFootprint, Stride2MatchesFig8)
{
    // Fig 8a: 5x5 input, k3, stride 2: tile <0,0> covers positions
    // 1A, 1C, 3A, 3C (rows/cols 0 and 2) -> 4 positions with step 2.
    const ConvParams p = makeConv(1, 1, 5, 1, 3, 2);
    const TileFootprint f = tileFootprint(p, {0, 0});
    EXPECT_EQ(f.ihBegin, 0);
    EXPECT_EQ(f.ihStep, 2);
    EXPECT_EQ(f.positions(), 4);
    EXPECT_TRUE(f.contains(0, 2));
    EXPECT_TRUE(f.contains(2, 0));
    EXPECT_FALSE(f.contains(1, 0));
    EXPECT_FALSE(f.contains(0, 4)); // beyond last output column
}

TEST(TileFootprint, PaddingClipsEdges)
{
    // k3 pad1 on 5x5: tile <0,0> would start at ih = -1; the first
    // valid position is ih = 0 for oh = 1.
    const ConvParams p = makeConv(1, 1, 5, 1, 3, 1, 1);
    const TileFootprint f = tileFootprint(p, {0, 0});
    EXPECT_EQ(f.ihBegin, 0);
    EXPECT_EQ(f.ihEnd, 4); // oh = 4 -> ih = 3
    EXPECT_EQ(f.positions(), 16);
}

TEST(TileFootprint, DilationShiftsOffsets)
{
    const ConvParams p = makeConv(1, 1, 9, 1, 3, 1, 0, 2);
    const TileFootprint f = tileFootprint(p, {2, 0});
    EXPECT_EQ(f.ihBegin, 4); // r*dil = 4
    EXPECT_EQ(f.ihEnd, 9);
}

TEST(TileFillElems, ScalesWithChannelsAndBatch)
{
    const ConvParams p = makeConv(4, 8, 5, 2, 3);
    EXPECT_EQ(tileFillElems(p, {0, 0}), 9 * 8 * 4);
}

TEST(TileFillElems, ShrinksQuadraticallyWithStride)
{
    const ConvParams s1 = makeConv(1, 1, 33, 1, 3, 1, 1);
    const ConvParams s2 = makeConv(1, 1, 33, 1, 3, 2, 1);
    const double ratio =
        static_cast<double>(tileFillElems(s1, {1, 1})) /
        static_cast<double>(tileFillElems(s2, {1, 1}));
    EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(TileOverlap, AdjacentTilesAtStride1OverlapHeavily)
{
    const ConvParams p = makeConv(1, 1, 99, 1, 3);
    const double ov = tileOverlap(p, {0, 0}, {0, 1});
    EXPECT_GT(ov, 0.95);
}

TEST(TileOverlap, ParityMismatchAtStride2IsZero)
{
    // Stride 2: <0,0> covers even columns, <0,1> odd columns.
    const ConvParams p = makeConv(1, 1, 9, 1, 3, 2);
    EXPECT_EQ(tileOverlap(p, {0, 0}, {0, 1}), 0.0);
}

TEST(TileOverlap, SameParityTilesOverlapAtStride2)
{
    // Sec. V: <0,0> and <0,2> share columns when stride = 2 and the
    // IFMap is large (96% at 99x99).
    const ConvParams p = makeConv(1, 1, 99, 1, 3, 2);
    const double ov = tileOverlap(p, {0, 0}, {0, 2});
    EXPECT_GT(ov, 0.9);
}

TEST(TileOverlap, SelfOverlapIsOne)
{
    const ConvParams p = makeConv(1, 2, 7, 1, 3, 2, 1);
    EXPECT_DOUBLE_EQ(tileOverlap(p, {1, 1}, {1, 1}), 1.0);
}

TEST(TileOperandAndWeights, ReconstructDirectConv)
{
    // Summing per-tile 1x1-conv GEMMs reproduces direct convolution:
    // the algebraic heart of the channel-first algorithm (Sec. III-B).
    const ConvParams p = makeConv(2, 3, 6, 4, 3, 2, 1);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(41);
    filter.fillRandom(43);

    tensor::Matrix acc(p.gemmM(), p.gemmN());
    acc.fill(0.0f);
    for (const auto &tile : decomposeFilter(p)) {
        const tensor::Matrix a = tileOperand(p, input, tile);
        const tensor::Matrix b = tileWeights(p, filter, tile);
        tensor::gemmAccumulate(a, b, acc);
    }
    const tensor::Tensor out = tensor::foldOutput(p, acc);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(out.maxAbsDiff(ref), 1e-3f);
}

TEST(InputUnion, FullCoverageAtStride1)
{
    const ConvParams p = makeConv(1, 2, 8, 1, 3, 1, 1);
    EXPECT_EQ(inputUnionPositions(p), 64);
}

TEST(InputUnion, PartialCoverageWhenStrideExceedsKernel)
{
    // k1 s2 touches only every other row/column.
    const ConvParams p = makeConv(1, 1, 8, 1, 1, 2);
    EXPECT_EQ(inputUnionPositions(p), 16);
}

TEST(InputUnion, BytesScaleWithDtypeChannelsBatch)
{
    ConvParams p = makeConv(3, 5, 8, 1, 3, 1, 1);
    p.dataType = DataType::Fp32;
    EXPECT_EQ(inputUnionBytes(p), 64u * 5 * 3 * 4);
}

TEST(TileFootprint, RejectsOutOfRangeTile)
{
    const ConvParams p = makeConv(1, 1, 5, 1, 3);
    EXPECT_THROW(tileFootprint(p, {3, 0}), FatalError);
    EXPECT_THROW(tileFootprint(p, {0, -1}), FatalError);
}

} // namespace
} // namespace cfconv::im2col
