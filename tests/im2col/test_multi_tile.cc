/** @file Tests for multi-tile planning and merged operands. */

#include <gtest/gtest.h>

#include "im2col/multi_tile.h"
#include "tensor/conv_ref.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {
namespace {

using tensor::makeConv;
using tensor::makeFilter;
using tensor::makeInput;

TEST(TpuMultiTileParam, MatchesPaperStrategy)
{
    // T = MIN(128 / C_I, W_F).
    EXPECT_EQ(tpuMultiTileParam(128, makeConv(1, 8, 32, 16, 3, 1, 1)),
              3); // 128/8 = 16, W_F = 3 -> 3
    EXPECT_EQ(tpuMultiTileParam(128, makeConv(1, 64, 32, 16, 5, 1, 2)),
              2); // 128/64 = 2
    EXPECT_EQ(tpuMultiTileParam(128, makeConv(1, 128, 32, 16, 3, 1, 1)),
              1);
    EXPECT_EQ(tpuMultiTileParam(128, makeConv(1, 3, 32, 16, 7, 2, 3)),
              7); // 128/3 = 42 -> capped by W_F = 7
    EXPECT_EQ(tpuMultiTileParam(128, makeConv(1, 256, 32, 16, 3, 1, 1)),
              1); // C_I exceeds the array: no merging possible
}

TEST(PlanMultiTile, GroupsConsecutiveTiles)
{
    const ConvParams p = makeConv(1, 4, 6, 2, 3, 1, 1);
    const MultiTilePlan plan = planMultiTile(p, 2);
    ASSERT_EQ(plan.groups.size(), 5u); // ceil(9 / 2)
    EXPECT_EQ(plan.groups[0].tiles.size(), 2u);
    EXPECT_EQ(plan.groups[4].tiles.size(), 1u); // remainder
    EXPECT_EQ(plan.groups[0].mergedK(p), 8);
}

TEST(PlanMultiTile, SingleTileDegeneratesToPerTileGroups)
{
    const ConvParams p = makeConv(1, 4, 6, 2, 3, 1, 1);
    const MultiTilePlan plan = planMultiTile(p, 1);
    EXPECT_EQ(plan.groups.size(), 9u);
    EXPECT_NEAR(plan.duplicationFactor(p), 1.0, 1e-12);
}

TEST(PlanMultiTile, DuplicationGrowsWithGroupSize)
{
    const ConvParams p = makeConv(1, 8, 10, 4, 3, 1, 1);
    const double d1 = planMultiTile(p, 1).duplicationFactor(p);
    const double d3 = planMultiTile(p, 3).duplicationFactor(p);
    EXPECT_LT(d1, d3);
    EXPECT_NEAR(d3, 3.0, 1e-12); // 9 tiles divide evenly into 3 groups
}

TEST(PlanMultiTile, WorkspaceGrowsLinearlyWithGroupSize)
{
    // Fig 14a: on-chip workspace grows linearly with the multi-tile
    // parameter.
    const ConvParams p = makeConv(8, 8, 128, 128, 3, 1, 1);
    const Index w1 = planMultiTile(p, 1).peakWorkspaceElems(p);
    const Index w2 = planMultiTile(p, 2).peakWorkspaceElems(p);
    const Index w3 = planMultiTile(p, 3).peakWorkspaceElems(p);
    EXPECT_NEAR(static_cast<double>(w2) / static_cast<double>(w1), 2.0,
                0.1);
    EXPECT_NEAR(static_cast<double>(w3) / static_cast<double>(w1), 3.0,
                0.2);
}

TEST(PlanMultiTile, RejectsNonPositiveGroupSize)
{
    const ConvParams p = makeConv(1, 4, 6, 2, 3);
    EXPECT_THROW(planMultiTile(p, 0), FatalError);
}

TEST(GroupOperand, ColumnsAreSideBySideTileOperands)
{
    const ConvParams p = makeConv(1, 2, 5, 2, 3);
    tensor::Tensor input = makeInput(p);
    input.fillRandom(3);
    const MultiTilePlan plan = planMultiTile(p, 2);
    const TileGroup &g = plan.groups[0];
    const tensor::Matrix merged = groupOperand(p, input, g);
    ASSERT_EQ(merged.cols(), 4);
    const tensor::Matrix a0 = tileOperand(p, input, g.tiles[0]);
    const tensor::Matrix a1 = tileOperand(p, input, g.tiles[1]);
    for (Index m = 0; m < merged.rows(); ++m) {
        EXPECT_EQ(merged.at(m, 0), a0.at(m, 0));
        EXPECT_EQ(merged.at(m, 1), a0.at(m, 1));
        EXPECT_EQ(merged.at(m, 2), a1.at(m, 0));
        EXPECT_EQ(merged.at(m, 3), a1.at(m, 1));
    }
}

class MultiTileConv : public ::testing::TestWithParam<Index>
{
};

TEST_P(MultiTileConv, MergedGemmsEqualDirectConv)
{
    // GEMM associativity: merging T tiles into one pass must not change
    // the result (the correctness argument of Sec. IV-B).
    const Index tiles_per_group = GetParam();
    const ConvParams p = makeConv(2, 3, 7, 4, 3, 2, 1);
    tensor::Tensor input = makeInput(p);
    tensor::Tensor filter = makeFilter(p);
    input.fillRandom(5);
    filter.fillRandom(7);

    const MultiTilePlan plan = planMultiTile(p, tiles_per_group);
    tensor::Matrix acc(p.gemmM(), p.gemmN());
    acc.fill(0.0f);
    for (const auto &g : plan.groups) {
        const tensor::Matrix a = groupOperand(p, input, g);
        const tensor::Matrix b = groupWeights(p, filter, g);
        tensor::gemmAccumulate(a, b, acc);
    }
    const tensor::Tensor out = tensor::foldOutput(p, acc);
    const tensor::Tensor ref = tensor::convDirect(p, input, filter);
    EXPECT_LT(out.maxAbsDiff(ref), 1e-3f)
        << "tiles_per_group = " << tiles_per_group;
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, MultiTileConv,
                         ::testing::Values(1, 2, 3, 4, 5, 9));

} // namespace
} // namespace cfconv::im2col
